// Distributed synthesis-cache tier: wire-format exactness, consistent-hash
// sharding, the daemon service, and the RemoteCostCache client against a
// real in-process daemon over a Unix socket.
//
// The load-bearing property throughout: cache topology must never change
// results. Reports round-trip the wire bit-exactly, a remote hit equals
// local synthesis, and every failure mode (dead peer, slow peer, garbage
// peer) degrades to local-only with identical outputs.
#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "api/approx_multiplier.h"
#include "dse/cache_wire.h"
#include "dse/cost_cache.h"
#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/remote_cache.h"
#include "dse/sweep.h"
#include "serve/cache_tier.h"
#include "serve/sink.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/rng.h"

namespace sdlc {
namespace {

using serve::BufferSink;
using serve::CacheTierOptions;
using serve::CacheTierService;
using serve::serve_listener;
using serve::UnixSocketServer;

SynthesisReport sample_report(uint64_t seed) {
    Xoshiro256 rng(seed);
    SynthesisReport r;
    r.cells = rng.below(10000);
    r.depth = static_cast<int>(rng.below(64));
    r.area_um2 = std::bit_cast<double>(rng.next() >> 12);  // finite positive
    r.delay_ps = 1234.5678901234567;
    r.dynamic_energy_fj = 1.0 / 3.0;
    r.dynamic_power_uw = std::numeric_limits<double>::denorm_min();
    r.leakage_nw = 5e-324 * static_cast<double>(1 + rng.below(100));
    r.energy_fj = 0.1 + static_cast<double>(rng.below(1000)) * 1e-13;
    return r;
}

// ------------------------------------------------------------ wire format ----

TEST(CacheWire, ReportRoundTripIsBitExact) {
    for (uint64_t seed = 1; seed <= 32; ++seed) {
        const SynthesisReport original = sample_report(seed);
        const std::string json = synthesis_report_json(original);
        JsonValue doc;
        ASSERT_TRUE(json_parse(json, doc)) << json;
        SynthesisReport decoded;
        std::string error;
        ASSERT_TRUE(synthesis_report_from_json(doc, decoded, &error)) << error;
        // operator== is bit-exact equality of every metric.
        EXPECT_TRUE(decoded == original) << json;
    }
}

TEST(CacheWire, ReportRoundTripPreservesNonFiniteBits) {
    // %.12g-style decimal JSON would destroy these; the bit-pattern
    // encoding must not.
    SynthesisReport r = sample_report(7);
    r.area_um2 = -0.0;
    r.delay_ps = std::numeric_limits<double>::infinity();
    r.energy_fj = std::numeric_limits<double>::quiet_NaN();
    const std::string json = synthesis_report_json(r);
    JsonValue doc;
    ASSERT_TRUE(json_parse(json, doc));
    SynthesisReport back;
    ASSERT_TRUE(synthesis_report_from_json(doc, back, nullptr));
    EXPECT_EQ(std::bit_cast<uint64_t>(back.area_um2), std::bit_cast<uint64_t>(-0.0));
    EXPECT_TRUE(std::isinf(back.delay_ps));
    EXPECT_EQ(std::bit_cast<uint64_t>(back.energy_fj), std::bit_cast<uint64_t>(r.energy_fj));
}

TEST(CacheWire, RequestLinesRoundTrip) {
    const SynthesisReport report = sample_report(3);
    const uint64_t key = 0xdeadbeefcafef00dull;

    CacheRequest request;
    CacheWireError error;
    ASSERT_TRUE(parse_cache_request(cache_get_line("g1", key), kCacheMaxRequestBytes, request,
                                    error))
        << error.message;
    EXPECT_EQ(request.op, CacheOp::kGet);
    EXPECT_EQ(request.id, "g1");
    EXPECT_EQ(request.key, key);

    ASSERT_TRUE(parse_cache_request(cache_put_line("p1", key, report), kCacheMaxRequestBytes,
                                    request, error))
        << error.message;
    EXPECT_EQ(request.op, CacheOp::kPut);
    EXPECT_EQ(request.key, key);
    EXPECT_TRUE(request.report == report);

    ASSERT_TRUE(parse_cache_request(cache_stats_line("s"), kCacheMaxRequestBytes, request,
                                    error));
    EXPECT_EQ(request.op, CacheOp::kStats);
    ASSERT_TRUE(parse_cache_request(cache_shutdown_line("q"), kCacheMaxRequestBytes, request,
                                    error));
    EXPECT_EQ(request.op, CacheOp::kShutdown);
}

TEST(CacheWire, RejectionsAreStructured) {
    struct Case {
        const char* line;
        const char* code;
    };
    const Case cases[] = {
        {"not json", "parse_error"},
        {"[1,2,3]", "invalid_request"},
        {"{\"op\": \"get\"}", "invalid_request"},                       // missing key
        {"{\"op\": \"get\", \"key\": 17}", "invalid_request"},          // numeric key
        {"{\"op\": \"get\", \"key\": \"zzz\"}", "invalid_request"},     // unparseable key
        {"{\"op\": \"get\", \"key\": \"42\"}", "invalid_request"},      // decimal, not 0x hex
        {"{\"op\": \"get\", \"key\": \"010\"}", "invalid_request"},     // octal-ambiguous
        {"{\"op\": \"get\", \"key\": \"0x11112222333344445\"}", "invalid_request"},  // 17 digits
        {"{\"op\": \"frobnicate\", \"key\": \"0x1\"}", "invalid_request"},
        {"{\"key\": \"0x1\"}", "invalid_request"},                      // missing op
        {"{\"op\": \"put\", \"key\": \"0x1\"}", "invalid_request"},     // missing report
        {"{\"op\": \"get\", \"key\": \"0x1\", \"extra\": 1}", "invalid_request"},
        {"{\"op\": \"stats\", \"key\": \"0x1\"}", "invalid_request"},   // key on stats
        {"{\"op\": \"put\", \"key\": \"0x1\", \"report\": {\"cells\": 1}}",
         "invalid_request"},                                            // short report
    };
    for (const Case& c : cases) {
        CacheRequest request;
        CacheWireError error;
        EXPECT_FALSE(parse_cache_request(c.line, kCacheMaxRequestBytes, request, error))
            << c.line;
        EXPECT_EQ(error.code, c.code) << c.line << " — " << error.message;
        EXPECT_FALSE(error.message.empty());
    }
    // Oversized line.
    CacheRequest request;
    CacheWireError error;
    EXPECT_FALSE(parse_cache_request(std::string(128, 'x'), 64, request, error));
    EXPECT_EQ(error.code, "too_large");
}

TEST(CacheWire, HostileIntegerFieldsAreRejectedNotCast) {
    // An out-of-range or non-integral double cast to size_t/int is UB; a
    // network-facing daemon must reject these values, not cast them.
    const std::string tail =
        "\"depth\": 3, \"area_um2\": \"0x0\", \"delay_ps\": \"0x0\","
        " \"dynamic_energy_fj\": \"0x0\", \"dynamic_power_uw\": \"0x0\","
        " \"leakage_nw\": \"0x0\", \"energy_fj\": \"0x0\"}}";
    for (const char* cells : {"1e999", "1e300", "-1", "1.5", "\"7\""}) {
        const std::string line = "{\"op\": \"put\", \"key\": \"0x1\", \"report\": {\"cells\": " +
                                 std::string(cells) + ", " + tail;
        CacheRequest request;
        CacheWireError error;
        EXPECT_FALSE(parse_cache_request(line, kCacheMaxRequestBytes, request, error))
            << cells;
        EXPECT_EQ(error.code, "invalid_request") << cells;
    }
    // Same guard on the daemon's "depth" and on stats counters a garbage
    // peer might send back to a client.
    const std::string bad_depth =
        "{\"op\": \"put\", \"key\": \"0x1\", \"report\": {\"cells\": 1, \"depth\": 1e10,"
        " \"area_um2\": \"0x0\", \"delay_ps\": \"0x0\", \"dynamic_energy_fj\": \"0x0\","
        " \"dynamic_power_uw\": \"0x0\", \"leakage_nw\": \"0x0\", \"energy_fj\": \"0x0\"}}";
    CacheRequest request;
    CacheWireError error;
    EXPECT_FALSE(parse_cache_request(bad_depth, kCacheMaxRequestBytes, request, error));
    CacheResponse response;
    std::string message;
    EXPECT_FALSE(parse_cache_response(
        "{\"id\": \"s\", \"ok\": true, \"stats\": {\"entries\": 1e300}}", response, &message));
}

TEST(CacheWire, ResponseRoundTrips) {
    const SynthesisReport report = sample_report(9);
    CacheResponse response;
    std::string error;

    ASSERT_TRUE(parse_cache_response(cache_hit_response("a", report), response, &error))
        << error;
    EXPECT_TRUE(response.ok);
    EXPECT_TRUE(response.has_hit && response.hit && response.has_report);
    EXPECT_TRUE(response.report == report);

    ASSERT_TRUE(parse_cache_response(cache_miss_response("b"), response, &error)) << error;
    EXPECT_TRUE(response.ok && response.has_hit && !response.hit);

    ASSERT_TRUE(parse_cache_response(cache_put_response("c", true), response, &error));
    EXPECT_TRUE(response.ok && response.stored);

    CacheDaemonStats stats;
    stats.entries = 42;
    stats.gets = 100;
    stats.hits = 60;
    stats.puts = 42;
    stats.rejected = 3;
    ASSERT_TRUE(parse_cache_response(cache_stats_response("d", stats), response, &error));
    EXPECT_TRUE(response.ok && response.has_stats);
    EXPECT_EQ(response.stats.entries, 42u);
    EXPECT_EQ(response.stats.gets, 100u);
    EXPECT_EQ(response.stats.hits, 60u);
    EXPECT_EQ(response.stats.rejected, 3u);

    ASSERT_TRUE(parse_cache_response(cache_error_response("e", "parse_error", "boom"),
                                     response, &error));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.code, "parse_error");
    EXPECT_EQ(response.message, "boom");

    // A hit claiming to carry a report but not doing so is a broken peer.
    EXPECT_FALSE(parse_cache_response("{\"id\": \"x\", \"ok\": true, \"hit\": true}", response,
                                      &error));
    EXPECT_FALSE(parse_cache_response("hello", response, &error));
    EXPECT_FALSE(parse_cache_response("{\"id\": \"x\"}", response, &error));
}

// --------------------------------------------------------------- hash ring ----

TEST(CacheHashRing, DeterministicAndOrderIndependent) {
    const std::vector<std::string> peers = {"unix:/tmp/a.sock", "10.0.0.2:7070",
                                            "unix:/tmp/c.sock"};
    std::vector<std::string> shuffled = {peers[2], peers[0], peers[1]};
    const CacheHashRing ring(peers, 64);
    const CacheHashRing ring_shuffled(shuffled, 64);
    Xoshiro256 rng(11);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t key = rng.next();
        const size_t a = ring.pick(key);
        const size_t b = ring_shuffled.pick(key);
        ASSERT_LT(a, peers.size());
        // Same spec owns the key regardless of list order.
        ASSERT_EQ(peers[a], shuffled[b]) << key;
    }
}

TEST(CacheHashRing, SpreadsKeysAcrossPeers) {
    const std::vector<std::string> peers = {"unix:/a", "unix:/b", "unix:/c"};
    const CacheHashRing ring(peers, 64);
    std::vector<int> counts(peers.size(), 0);
    Xoshiro256 rng(13);
    const int keys = 30000;
    for (int i = 0; i < keys; ++i) ++counts[ring.pick(rng.next())];
    for (size_t p = 0; p < peers.size(); ++p) {
        // With 64 vnodes each peer should own a substantial share; 15% is a
        // loose floor that still catches a broken ring (one peer owning
        // everything, or one owning nothing).
        EXPECT_GT(counts[p], keys * 15 / 100) << p;
    }
}

TEST(CacheHashRing, RemovingAPeerOnlyRemapsItsKeys) {
    const std::vector<std::string> three = {"unix:/a", "unix:/b", "unix:/c"};
    const std::vector<std::string> two = {"unix:/a", "unix:/b"};
    const CacheHashRing ring3(three, 64);
    const CacheHashRing ring2(two, 64);
    Xoshiro256 rng(17);
    for (int i = 0; i < 5000; ++i) {
        const uint64_t key = rng.next();
        const size_t owner3 = ring3.pick(key);
        if (owner3 == 2) continue;  // keys of the removed peer may remap
        // Everything owned by a surviving peer must stay put: that is the
        // "consistent" in consistent hashing.
        ASSERT_EQ(two[ring2.pick(key)], three[owner3]) << key;
    }
}

TEST(CacheHashRing, SuccessorsAreDistinctAndPrimaryFirst) {
    const std::vector<std::string> specs = {"unix:/tmp/a.sock", "unix:/tmp/b.sock",
                                            "host1:9001"};
    const CacheHashRing ring(specs, 64);
    for (uint64_t key = 1; key <= 512; ++key) {
        const uint64_t spread = key * 0x9e3779b97f4a7c15ull;
        // successors(key, 1) is exactly the classic pick().
        const std::vector<size_t> one = ring.successors(spread, 1);
        ASSERT_EQ(one.size(), 1u);
        EXPECT_EQ(one[0], ring.pick(spread));
        // Replication walk: distinct peers, primary first, capped at the
        // peer count no matter how much replication is requested.
        const std::vector<size_t> two = ring.successors(spread, 2);
        ASSERT_EQ(two.size(), 2u);
        EXPECT_EQ(two[0], one[0]);
        EXPECT_NE(two[0], two[1]);
        const std::vector<size_t> all = ring.successors(spread, 99);
        ASSERT_EQ(all.size(), specs.size());
        EXPECT_EQ(all[0], two[0]);
        EXPECT_EQ(all[1], two[1]);
    }
    const CacheHashRing empty({}, 64);
    EXPECT_TRUE(empty.successors(42, 2).empty());
}

TEST(CacheHashRing, SuccessorsAreOrderIndependent) {
    // Two processes configured with the same peers in different order must
    // agree on the whole replication chain, not just the primary.
    const std::vector<std::string> fwd = {"unix:/a", "unix:/b", "unix:/c"};
    const std::vector<std::string> rev = {"unix:/c", "unix:/b", "unix:/a"};
    const CacheHashRing ring_fwd(fwd, 64);
    const CacheHashRing ring_rev(rev, 64);
    for (uint64_t key = 1; key <= 256; ++key) {
        const uint64_t spread = key * 0x2545f4914f6cdd1dull;
        const std::vector<size_t> a = ring_fwd.successors(spread, 2);
        const std::vector<size_t> b = ring_rev.successors(spread, 2);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(fwd[a[i]], rev[b[i]]) << "key " << key << " slot " << i;
        }
    }
}

TEST(CacheHashRing, EmptyRingPicksNothing) {
    const CacheHashRing ring({}, 64);
    EXPECT_EQ(ring.pick(123), CacheHashRing::npos);
}

TEST(CachePeerSpec, ParsesAndRejects) {
    CachePeerAddress address;
    std::string error;
    ASSERT_TRUE(parse_cache_peer("unix:/tmp/x.sock", address, &error));
    EXPECT_TRUE(address.is_unix);
    EXPECT_EQ(address.path_or_host, "/tmp/x.sock");
    ASSERT_TRUE(parse_cache_peer("127.0.0.1:7070", address, &error));
    EXPECT_FALSE(address.is_unix);
    EXPECT_EQ(address.port, 7070);
    ASSERT_TRUE(parse_cache_peer("tcp:localhost:1234", address, &error));
    EXPECT_EQ(address.path_or_host, "localhost");
    EXPECT_FALSE(parse_cache_peer("unix:", address, &error));
    EXPECT_FALSE(parse_cache_peer("no-port-here", address, &error));
    EXPECT_FALSE(parse_cache_peer("host:notaport", address, &error));
    EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------- daemon service ----

TEST(CacheTierService, GetPutStatsFlow) {
    CacheTierService service;
    const auto sink = std::make_shared<BufferSink>();
    const SynthesisReport report = sample_report(21);
    const uint64_t key = 0x123456789abcdef0ull;

    EXPECT_TRUE(service.submit_line(cache_get_line("g0", key), sink));
    EXPECT_TRUE(service.submit_line(cache_put_line("p0", key, report), sink));
    EXPECT_TRUE(service.submit_line(cache_put_line("p1", key, report), sink));  // duplicate
    EXPECT_TRUE(service.submit_line(cache_get_line("g1", key), sink));
    EXPECT_TRUE(service.submit_line("garbage", sink));

    const std::vector<std::string> lines = sink->lines();
    ASSERT_EQ(lines.size(), 5u);
    CacheResponse response;
    ASSERT_TRUE(parse_cache_response(lines[0], response));
    EXPECT_TRUE(response.ok && response.has_hit && !response.hit);
    ASSERT_TRUE(parse_cache_response(lines[1], response));
    EXPECT_TRUE(response.ok && response.stored);
    ASSERT_TRUE(parse_cache_response(lines[2], response));
    EXPECT_TRUE(response.ok);
    EXPECT_FALSE(response.stored);  // first write won
    ASSERT_TRUE(parse_cache_response(lines[3], response));
    EXPECT_TRUE(response.ok && response.has_hit && response.hit);
    EXPECT_TRUE(response.report == report);
    ASSERT_TRUE(parse_cache_response(lines[4], response));
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.code, "parse_error");

    const CacheDaemonStats stats = service.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.gets, 2u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.puts, 2u);
    EXPECT_EQ(stats.rejected, 1u);
}

TEST(CacheTierService, ShutdownStopsIntake) {
    CacheTierService service;
    const auto sink = std::make_shared<BufferSink>();
    bool hook_fired = false;
    service.set_on_shutdown([&] { hook_fired = true; });
    EXPECT_FALSE(service.submit_line(cache_shutdown_line("q"), sink));
    EXPECT_TRUE(hook_fired);
    EXPECT_TRUE(service.shutdown_requested());
    CacheResponse response;
    ASSERT_TRUE(parse_cache_response(sink->lines().back(), response));
    EXPECT_TRUE(response.ok);
}

// ----------------------------------------------- client-daemon integration ----

/// An in-process cache daemon on a real Unix socket, using the same
/// serve_listener lifecycle as `cache_tool`.
class DaemonHarness {
public:
    explicit DaemonHarness(const std::string& path, const CacheTierOptions& opts = {})
        : listener_(path), service_(opts), thread_([this, opts] {
              serve_listener(listener_, service_, opts.max_request_bytes);
          }) {}

    ~DaemonHarness() { stop(); }

    void stop() {
        if (thread_.joinable()) {
            listener_.close();
            thread_.join();
        }
    }

    [[nodiscard]] CacheDaemonStats stats() const { return service_.stats(); }

private:
    UnixSocketServer listener_;
    CacheTierService service_;
    std::thread thread_;
};

struct SynthesisSetup {
    Netlist net = ApproxMultiplier({4, 2, MultiplierVariant::kSdlc}).build_netlist().net;
    CellLibrary lib = CellLibrary::generic_90nm();
    SynthesisOptions opts;
};

TEST(RemoteCostCacheIntegration, TierFlowWriteBackAndSecondInstanceHit) {
    const std::string sock = testing::TempDir() + "/sdlc_cache_tier_flow.sock";
    DaemonHarness daemon(sock);
    SynthesisSetup setup;
    const SynthesisReport direct = synthesize(setup.net, setup.lib, setup.opts);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock};

    // Instance 1: cold local, cold peer -> miss, synthesize, write back.
    CostCache local1;
    RemoteCostCache remote1(local1, ropts);
    EXPECT_TRUE(remote1.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    RemoteCacheCounters c1 = remote1.remote_counters();
    EXPECT_TRUE(c1.enabled);
    EXPECT_EQ(c1.hits, 0u);
    EXPECT_EQ(c1.misses, 1u);
    EXPECT_EQ(c1.puts, 1u);
    EXPECT_EQ(c1.errors, 0u);

    // Same instance again: local hit, no new peer traffic.
    EXPECT_TRUE(remote1.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    c1 = remote1.remote_counters();
    EXPECT_EQ(c1.misses, 1u);
    EXPECT_EQ(c1.puts, 1u);

    // Instance 2 (fresh local tier, same peer): remote hit, bit-identical
    // report, and the hit fills its local tier.
    CostCache local2;
    RemoteCostCache remote2(local2, ropts);
    EXPECT_TRUE(remote2.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    EXPECT_EQ(remote2.remote_counters().hits, 1u);
    EXPECT_EQ(remote2.keys().size(), 1u);
    EXPECT_TRUE(remote2.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    EXPECT_EQ(remote2.remote_counters().hits, 1u);  // second call stayed local

    const CacheDaemonStats daemon_stats = daemon.stats();
    EXPECT_EQ(daemon_stats.entries, 1u);
    EXPECT_EQ(daemon_stats.gets, 2u);
    EXPECT_EQ(daemon_stats.hits, 1u);
    EXPECT_EQ(daemon_stats.puts, 1u);
}

TEST(RemoteCostCacheIntegration, DeadPeerDegradesToLocalWithIdenticalResults) {
    SynthesisSetup setup;
    const SynthesisReport direct = synthesize(setup.net, setup.lib, setup.opts);
    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + testing::TempDir() + "/sdlc_cache_no_such_daemon.sock"};
    CostCache local;
    RemoteCostCache remote(local, ropts);
    EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    const RemoteCacheCounters c = remote.remote_counters();
    EXPECT_EQ(c.hits, 0u);
    EXPECT_EQ(c.misses, 0u);
    EXPECT_GE(c.errors, 1u);
    EXPECT_EQ(c.puts, 0u);  // no write-back probing of a down peer
}

TEST(RemoteCostCacheIntegration, SlowPeerTimesOutAndDegrades) {
    const std::string sock = testing::TempDir() + "/sdlc_cache_tier_slow.sock";
    CacheTierOptions slow;
    slow.delay_ms = 500;
    DaemonHarness daemon(sock, slow);
    SynthesisSetup setup;
    const SynthesisReport direct = synthesize(setup.net, setup.lib, setup.opts);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock};
    ropts.timeout_ms = 30;
    CostCache local;
    RemoteCostCache remote(local, ropts);
    EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    const RemoteCacheCounters c = remote.remote_counters();
    EXPECT_GE(c.timeouts, 1u);
    EXPECT_EQ(c.hits, 0u);
}

TEST(RemoteCostCacheIntegration, SweepIsByteIdenticalWithAndWithoutTier) {
    const std::string sock = testing::TempDir() + "/sdlc_cache_tier_sweep.sock";
    DaemonHarness daemon(sock);
    const SweepSpec spec = SweepSpec::for_width(4);

    EvalOptions base;
    base.threads = 2;
    SweepStats local_stats;
    const std::vector<DesignPoint> local_points = evaluate_sweep(spec, base, &local_stats);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock};

    // Cold fleet member: populates the daemon.
    CostCache local1;
    RemoteCostCache remote1(local1, ropts);
    EvalOptions with_tier = base;
    with_tier.hw_cache = &remote1;
    SweepStats cold_stats;
    const std::vector<DesignPoint> cold_points = evaluate_sweep(spec, with_tier, &cold_stats);

    // Warm fleet member: fresh local tier, warm daemon.
    CostCache local2;
    RemoteCostCache remote2(local2, ropts);
    EvalOptions warm_eval = base;
    warm_eval.hw_cache = &remote2;
    SweepStats warm_stats;
    const std::vector<DesignPoint> warm_points = evaluate_sweep(spec, warm_eval, &warm_stats);

    // The canonical export is byte-identical across all three topologies.
    const auto export_of = [&](const std::vector<DesignPoint>& points,
                               const SweepStats& stats) {
        const ParetoResult pareto = pareto_analysis(objective_matrix(points));
        return dse_to_json(points, pareto.rank, stats, default_objectives());
    };
    EXPECT_EQ(export_of(local_points, local_stats), export_of(cold_points, cold_stats));
    EXPECT_EQ(export_of(local_points, local_stats), export_of(warm_points, warm_stats));

    // The deterministic local-cache counters are topology-independent too.
    EXPECT_EQ(cold_stats.hw_cache_hits, local_stats.hw_cache_hits);
    EXPECT_EQ(cold_stats.hw_cache_misses, local_stats.hw_cache_misses);
    EXPECT_EQ(warm_stats.hw_cache_misses, local_stats.hw_cache_misses);

    // Observability: the cold member wrote everything back, the warm member
    // hit for every unique design. GE rather than EQ where two workers
    // racing on one key can both talk to the peer (the raw counters are
    // scheduling-dependent by design); the daemon's entry count is exact
    // because duplicate puts are dropped.
    EXPECT_FALSE(local_stats.remote.enabled);
    EXPECT_TRUE(cold_stats.remote.enabled);
    EXPECT_GE(cold_stats.remote.puts, local_stats.hw_cache_misses);
    EXPECT_GE(warm_stats.remote.hits, local_stats.hw_cache_misses);
    EXPECT_EQ(warm_stats.remote.puts, 0u);
    EXPECT_EQ(daemon.stats().entries, local_stats.hw_cache_misses);
}

// ------------------------------------------------- cooldown + canary probe ----

TEST(RemoteCostCacheIntegration, CooldownRecoveryReprobesAndResumesRemoteHits) {
    const std::string sock = testing::TempDir() + "/sdlc_cache_cooldown.sock";
    auto daemon = std::make_unique<DaemonHarness>(sock);

    // Distinct designs so each step forces fresh remote traffic.
    const std::vector<MultiplierConfig> configs = SweepSpec::for_width(4).enumerate();
    ASSERT_GE(configs.size(), 4u);
    const CellLibrary lib = CellLibrary::generic_90nm();
    const SynthesisOptions sopts;
    const auto net_of = [&](size_t i) { return ApproxMultiplier(configs[i]).build_netlist().net; };

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock};
    ropts.cooldown_ms = 50;  // recover fast enough to test
    CostCache local;
    RemoteCostCache remote(local, ropts);

    // Healthy: miss + write-back.
    EXPECT_TRUE(remote.get_or_synthesize(net_of(0), lib, sopts) ==
                synthesize(net_of(0), lib, sopts));
    EXPECT_EQ(remote.remote_counters().misses, 1u);
    EXPECT_EQ(daemon->stats().entries, 1u);

    // Peer dies: the next lookup fails once, marks the peer down, and the
    // result still equals direct synthesis.
    daemon.reset();
    EXPECT_TRUE(remote.get_or_synthesize(net_of(1), lib, sopts) ==
                synthesize(net_of(1), lib, sopts));
    EXPECT_EQ(remote.remote_counters().errors, 1u);

    // While the cooldown runs, lookups skip the peer entirely: local
    // synthesis, no new error counted, nothing queued behind the corpse.
    EXPECT_TRUE(remote.get_or_synthesize(net_of(2), lib, sopts) ==
                synthesize(net_of(2), lib, sopts));
    EXPECT_EQ(remote.remote_counters().errors, 1u);

    // Peer returns on the same address; once the cooldown expires a single
    // canary request re-proves it and remote traffic resumes.
    daemon = std::make_unique<DaemonHarness>(sock);
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    EXPECT_TRUE(remote.get_or_synthesize(net_of(3), lib, sopts) ==
                synthesize(net_of(3), lib, sopts));
    const RemoteCacheCounters after = remote.remote_counters();
    EXPECT_EQ(after.errors, 1u) << "recovery must not count new failures";
    EXPECT_EQ(after.misses, 2u) << "the canary get reached the daemon";
    EXPECT_GE(daemon->stats().puts, 1u) << "write-back resumed";

    // A fresh fleet member now gets a remote hit for the recovered key.
    CostCache local2;
    RemoteCostCache remote2(local2, ropts);
    EXPECT_TRUE(remote2.get_or_synthesize(net_of(3), lib, sopts) ==
                synthesize(net_of(3), lib, sopts));
    EXPECT_EQ(remote2.remote_counters().hits, 1u);
}

// ---------------------------------------------------------- replication ----

TEST(RemoteCostCacheIntegration, ReplicatedPutFansOutToAllSuccessors) {
    const std::string sock_a = testing::TempDir() + "/sdlc_cache_repl_a.sock";
    const std::string sock_b = testing::TempDir() + "/sdlc_cache_repl_b.sock";
    DaemonHarness daemon_a(sock_a);
    DaemonHarness daemon_b(sock_b);
    SynthesisSetup setup;
    const SynthesisReport direct = synthesize(setup.net, setup.lib, setup.opts);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock_a, "unix:" + sock_b};
    ropts.replicas = 2;
    CostCache local;
    RemoteCostCache remote(local, ropts);
    EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);

    const RemoteCacheCounters c = remote.remote_counters();
    EXPECT_EQ(c.misses, 1u) << "only the primary miss is counted";
    EXPECT_EQ(c.puts, 2u) << "write-back fans out to every successor";
    EXPECT_EQ(daemon_a.stats().entries, 1u);
    EXPECT_EQ(daemon_b.stats().entries, 1u);
}

TEST(RemoteCostCacheIntegration, DeadPrimaryLiveReplicaStillHitsBitExactly) {
    const std::string sock_a = testing::TempDir() + "/sdlc_cache_dp_a.sock";
    const std::string sock_b = testing::TempDir() + "/sdlc_cache_dp_b.sock";
    auto daemon_a = std::make_unique<DaemonHarness>(sock_a);
    auto daemon_b = std::make_unique<DaemonHarness>(sock_b);
    SynthesisSetup setup;
    const SynthesisReport direct = synthesize(setup.net, setup.lib, setup.opts);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock_a, "unix:" + sock_b};
    ropts.replicas = 2;

    {
        CostCache seed_local;
        RemoteCostCache seeder(seed_local, ropts);
        EXPECT_TRUE(seeder.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    }

    // Kill the key's primary (the ring is public and deterministic, so the
    // test can know which daemon that is).
    const uint64_t key = CostCache::content_key(setup.net, setup.lib, setup.opts);
    const CacheHashRing ring(ropts.peers, ropts.vnodes);
    const std::vector<size_t> order = ring.successors(key, 2);
    ASSERT_EQ(order.size(), 2u);
    if (order[0] == 0) daemon_a.reset(); else daemon_b.reset();

    // A fresh fleet member still gets the report from the live replica,
    // bit-exactly, with the failure visible only in the counters.
    CostCache local;
    RemoteCostCache remote(local, ropts);
    EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    const RemoteCacheCounters c = remote.remote_counters();
    EXPECT_GE(c.errors, 1u) << "dead primary noticed";
    EXPECT_EQ(c.hits, 0u) << "no primary hit";
    EXPECT_EQ(c.replica_hits, 1u) << "served by the replica";
    EXPECT_EQ(c.read_repairs, 0u) << "a failed primary is not repairable";

    // The second lookup is a pure local hit: no churn against the corpse.
    EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    EXPECT_EQ(remote.remote_counters().replica_hits, 1u);
}

TEST(RemoteCostCacheIntegration, ReadRepairBackfillsAPrimaryThatMissed) {
    const std::string sock_a = testing::TempDir() + "/sdlc_cache_rr_a.sock";
    const std::string sock_b = testing::TempDir() + "/sdlc_cache_rr_b.sock";
    DaemonHarness daemon_a(sock_a);
    DaemonHarness daemon_b(sock_b);
    SynthesisSetup setup;
    const SynthesisReport direct = synthesize(setup.net, setup.lib, setup.opts);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock_a, "unix:" + sock_b};
    ropts.replicas = 2;

    // Seed only the *replica* (simulating a primary that lost its disk):
    // a single-peer client writes the key to the second-in-line daemon.
    const uint64_t key = CostCache::content_key(setup.net, setup.lib, setup.opts);
    const CacheHashRing ring(ropts.peers, ropts.vnodes);
    const std::vector<size_t> order = ring.successors(key, 2);
    ASSERT_EQ(order.size(), 2u);
    DaemonHarness& primary = order[0] == 0 ? daemon_a : daemon_b;
    {
        RemoteCacheOptions replica_only;
        replica_only.peers = {ropts.peers[order[1]]};
        CostCache seed_local;
        RemoteCostCache seeder(seed_local, replica_only);
        EXPECT_TRUE(seeder.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    }
    EXPECT_EQ(primary.stats().entries, 0u);

    // Replicated lookup: primary misses, replica hits, and read repair
    // writes the report back to the primary so the next primary get hits.
    CostCache local;
    RemoteCostCache remote(local, ropts);
    EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    const RemoteCacheCounters c = remote.remote_counters();
    EXPECT_EQ(c.misses, 1u);
    EXPECT_EQ(c.replica_hits, 1u);
    EXPECT_EQ(c.read_repairs, 1u);
    EXPECT_EQ(c.puts, 1u) << "the repair write-back is itself a put";
    EXPECT_EQ(primary.stats().entries, 1u) << "primary was backfilled";

    CostCache local2;
    RemoteCostCache remote2(local2, ropts);
    EXPECT_TRUE(remote2.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    const RemoteCacheCounters c2 = remote2.remote_counters();
    EXPECT_EQ(c2.hits, 1u) << "repaired primary now serves the hit";
    EXPECT_EQ(c2.replica_hits, 0u);
}

TEST(RemoteCostCacheIntegration, ReplicatedSweepIsByteIdentical) {
    const std::string sock_a = testing::TempDir() + "/sdlc_cache_rsweep_a.sock";
    const std::string sock_b = testing::TempDir() + "/sdlc_cache_rsweep_b.sock";
    auto daemon_a = std::make_unique<DaemonHarness>(sock_a);
    auto daemon_b = std::make_unique<DaemonHarness>(sock_b);
    const SweepSpec spec = SweepSpec::for_width(4);

    EvalOptions base;
    base.threads = 2;
    SweepStats ref_stats;
    const std::vector<DesignPoint> reference = evaluate_sweep(spec, base, &ref_stats);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock_a, "unix:" + sock_b};
    ropts.replicas = 2;

    const auto export_of = [&](const std::vector<DesignPoint>& points,
                               const SweepStats& stats) {
        const ParetoResult pareto = pareto_analysis(objective_matrix(points));
        return dse_to_json(points, pareto.rank, stats, default_objectives());
    };

    // Cold replicated run populates both daemons identically.
    {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EvalOptions eval = base;
        eval.hw_cache = &remote;
        SweepStats stats;
        const std::vector<DesignPoint> points = evaluate_sweep(spec, eval, &stats);
        EXPECT_EQ(export_of(reference, ref_stats), export_of(points, stats));
        EXPECT_EQ(daemon_a->stats().entries, daemon_b->stats().entries);
        EXPECT_EQ(daemon_a->stats().entries, ref_stats.hw_cache_misses);
    }

    // Dead-primary sweep: kill one daemon outright; every key it owned is
    // served by its replica or synthesized locally — same bytes regardless.
    daemon_a.reset();
    {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EvalOptions eval = base;
        eval.hw_cache = &remote;
        SweepStats stats;
        const std::vector<DesignPoint> points = evaluate_sweep(spec, eval, &stats);
        EXPECT_EQ(export_of(reference, ref_stats), export_of(points, stats));
        const RemoteCacheCounters c = remote.remote_counters();
        EXPECT_GE(c.hits + c.replica_hits, 1u) << "the surviving daemon served warm keys";
    }
}

// ------------------------------------------------------- durable recovery ----

TEST(CacheTierService, DurableDaemonRecoversWarmAcrossRestart) {
    const std::string dir = testing::TempDir() + "/sdlc_cache_durable_svc";
    std::filesystem::remove_all(dir);
    CacheTierOptions opts;
    opts.data_dir = dir;
    const SynthesisReport report = sample_report(77);
    const uint64_t key = 0xfeedfacecafebeefull;

    {
        CacheTierService service(opts);
        ASSERT_TRUE(service.durable_error().empty()) << service.durable_error();
        const auto sink = std::make_shared<BufferSink>();
        EXPECT_TRUE(service.submit_line(cache_put_line("p0", key, report), sink));
        const CacheDaemonStats stats = service.stats();
        EXPECT_EQ(stats.entries, 1u);
        EXPECT_EQ(stats.recovered, 0u);
        EXPECT_EQ(stats.warm_hits, 0u);
    }  // destroyed without any orderly flush beyond the append itself

    CacheTierService restarted(opts);
    ASSERT_TRUE(restarted.durable_error().empty()) << restarted.durable_error();
    EXPECT_EQ(restarted.recovery().log_records, 1u);
    const auto sink = std::make_shared<BufferSink>();
    EXPECT_TRUE(restarted.submit_line(cache_get_line("g0", key), sink));
    CacheResponse response;
    ASSERT_TRUE(parse_cache_response(sink->lines().back(), response));
    ASSERT_TRUE(response.ok && response.has_hit && response.hit);
    EXPECT_TRUE(response.report == report) << "recovered report must be bit-exact";

    const CacheDaemonStats stats = restarted.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.recovered, 1u);
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.warm_hits, 1u) << "a hit on a recovered key is warmth that survived";
}

TEST(RemoteCostCacheIntegration, RestartedDurableDaemonServesWarmRemoteHits) {
    const std::string sock = testing::TempDir() + "/sdlc_cache_durable_remote.sock";
    const std::string dir = testing::TempDir() + "/sdlc_cache_durable_remote_data";
    std::filesystem::remove_all(dir);
    CacheTierOptions dopts;
    dopts.data_dir = dir;
    SynthesisSetup setup;
    const SynthesisReport direct = synthesize(setup.net, setup.lib, setup.opts);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + sock};

    auto daemon = std::make_unique<DaemonHarness>(sock, dopts);
    {
        CostCache local;
        RemoteCostCache remote(local, ropts);
        EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
        EXPECT_EQ(daemon->stats().entries, 1u);
    }

    // Hard stop (no shutdown request — the listener is just torn down) and
    // a restart from the same data dir.
    daemon.reset();
    daemon = std::make_unique<DaemonHarness>(sock, dopts);
    EXPECT_EQ(daemon->stats().recovered, 1u);

    // A cold fleet member now remote-hits a report that survived the kill.
    CostCache local;
    RemoteCostCache remote(local, ropts);
    EXPECT_TRUE(remote.get_or_synthesize(setup.net, setup.lib, setup.opts) == direct);
    EXPECT_EQ(remote.remote_counters().hits, 1u);
    const CacheDaemonStats stats = daemon->stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.warm_hits, 1u);
}

}  // namespace
}  // namespace sdlc
