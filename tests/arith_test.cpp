// Tests for adders, the bit matrix and all accumulation schemes, using the
// accurate multiplier as the system under test (exhaustive at small widths).
#include <gtest/gtest.h>

#include "arith/accumulate.h"
#include "arith/adders.h"
#include "arith/bit_matrix.h"
#include "arith/mul_netlist.h"
#include "baselines/accurate.h"
#include "netlist/sim.h"
#include "tech/sta.h"
#include "util/rng.h"

namespace sdlc {
namespace {

/// gtest parameter names may not contain '-'; map schemes to clean tokens.
std::string scheme_token(AccumulationScheme s) {
    switch (s) {
        case AccumulationScheme::kRowRipple: return "ripple";
        case AccumulationScheme::kWallace: return "wallace";
        case AccumulationScheme::kDadda: return "dadda";
        case AccumulationScheme::kRowFastCpa: return "fastcpa";
    }
    return "unknown";
}

TEST(Adders, HalfAdderTruthTable) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const SumCarry hc = half_adder(nl, a, b);
    nl.mark_output(hc.sum, "s");
    nl.mark_output(hc.carry, "c");
    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            const auto out = eval_single(nl, {av != 0, bv != 0});
            EXPECT_EQ(out[0], ((av + bv) & 1) != 0);
            EXPECT_EQ(out[1], av + bv >= 2);
        }
    }
}

TEST(Adders, FullAdderTruthTable) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId c = nl.input("c");
    const SumCarry fc = full_adder(nl, a, b, c);
    nl.mark_output(fc.sum, "s");
    nl.mark_output(fc.carry, "co");
    for (int v = 0; v < 8; ++v) {
        const int av = v & 1, bv = (v >> 1) & 1, cv = (v >> 2) & 1;
        const auto out = eval_single(nl, {av != 0, bv != 0, cv != 0});
        EXPECT_EQ(out[0], ((av + bv + cv) & 1) != 0) << v;
        EXPECT_EQ(out[1], av + bv + cv >= 2) << v;
    }
}

TEST(Adders, RippleAddExhaustive4Bit) {
    Netlist nl;
    std::vector<NetId> a, b;
    for (int i = 0; i < 4; ++i) a.push_back(nl.input("a" + std::to_string(i)));
    for (int i = 0; i < 4; ++i) b.push_back(nl.input("b" + std::to_string(i)));
    const auto sum = ripple_add(nl, a, b);
    ASSERT_EQ(sum.size(), 5u);
    for (const NetId s : sum) nl.mark_output(s, "s");

    for (uint64_t av = 0; av < 16; ++av) {
        for (uint64_t bv = 0; bv < 16; ++bv) {
            std::vector<bool> in;
            for (int i = 0; i < 4; ++i) in.push_back(((av >> i) & 1) != 0);
            for (int i = 0; i < 4; ++i) in.push_back(((bv >> i) & 1) != 0);
            const auto out = eval_single(nl, in);
            uint64_t got = 0;
            for (size_t i = 0; i < out.size(); ++i) got |= static_cast<uint64_t>(out[i]) << i;
            EXPECT_EQ(got, av + bv);
        }
    }
}

TEST(Adders, RippleAddRejectsWidthMismatch) {
    Netlist nl;
    const std::vector<NetId> a = {nl.input("a")};
    const std::vector<NetId> b = {nl.input("b0"), nl.input("b1")};
    EXPECT_THROW(ripple_add(nl, a, b), std::invalid_argument);
}

TEST(Adders, KoggeStoneExhaustive5Bit) {
    Netlist nl;
    std::vector<NetId> a, b;
    for (int i = 0; i < 5; ++i) a.push_back(nl.input("a" + std::to_string(i)));
    for (int i = 0; i < 5; ++i) b.push_back(nl.input("b" + std::to_string(i)));
    const auto sum = kogge_stone_add(nl, a, b);
    ASSERT_EQ(sum.size(), 6u);
    for (const NetId s : sum) nl.mark_output(s, "s");
    for (uint64_t av = 0; av < 32; ++av) {
        for (uint64_t bv = 0; bv < 32; ++bv) {
            std::vector<bool> in;
            for (int i = 0; i < 5; ++i) in.push_back(((av >> i) & 1) != 0);
            for (int i = 0; i < 5; ++i) in.push_back(((bv >> i) & 1) != 0);
            const auto out = eval_single(nl, in);
            uint64_t got = 0;
            for (size_t i = 0; i < out.size(); ++i) got |= static_cast<uint64_t>(out[i]) << i;
            ASSERT_EQ(got, av + bv) << av << "+" << bv;
        }
    }
}

TEST(Adders, KoggeStoneLogDepth) {
    // 32-bit prefix adder must be far shallower than the ripple chain.
    Netlist nl_ks, nl_rp;
    std::vector<NetId> a_ks, b_ks, a_rp, b_rp;
    for (int i = 0; i < 32; ++i) a_ks.push_back(nl_ks.input("a" + std::to_string(i)));
    for (int i = 0; i < 32; ++i) b_ks.push_back(nl_ks.input("b" + std::to_string(i)));
    for (int i = 0; i < 32; ++i) a_rp.push_back(nl_rp.input("a" + std::to_string(i)));
    for (int i = 0; i < 32; ++i) b_rp.push_back(nl_rp.input("b" + std::to_string(i)));
    for (const NetId s : kogge_stone_add(nl_ks, a_ks, b_ks)) nl_ks.mark_output(s, "s");
    for (const NetId s : ripple_add(nl_rp, a_rp, b_rp)) nl_rp.mark_output(s, "s");
    EXPECT_LT(logic_depth(nl_ks), 14);
    EXPECT_GT(logic_depth(nl_rp), 32);
}

TEST(Adders, SparseFastAddHandlesHoles) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const std::vector<NetId> ra = {a, kNoNet, kNoNet};
    const std::vector<NetId> rb = {kNoNet, b, kNoNet};
    const auto sum = sparse_fast_add(nl, ra, rb);
    ASSERT_EQ(sum.size(), 4u);
    for (const NetId s : sum) nl.mark_output(s, "s");
    for (int av = 0; av < 2; ++av) {
        for (int bv = 0; bv < 2; ++bv) {
            const auto out = eval_single(nl, {av != 0, bv != 0});
            uint64_t got = 0;
            for (size_t i = 0; i < out.size(); ++i) got |= static_cast<uint64_t>(out[i]) << i;
            EXPECT_EQ(got, static_cast<uint64_t>(av + 2 * bv));
        }
    }
}

TEST(Adders, SparseRowAddSkipsHoles) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    // Row A has a bit only at weight 0, row B only at weight 2: no adders.
    const std::vector<NetId> ra = {a, kNoNet, kNoNet};
    const std::vector<NetId> rb = {kNoNet, kNoNet, b};
    const size_t before = nl.logic_gate_count();
    const auto sum = sparse_row_add(nl, ra, rb);
    EXPECT_EQ(nl.logic_gate_count(), before);  // pure pass-through
    EXPECT_EQ(sum[0], a);
    EXPECT_EQ(sum[2], b);
}

TEST(BitMatrix, HeightsAndRemapping) {
    Netlist nl;
    BitMatrix m(4);
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId c = nl.input("c");
    m.add(1, a);
    m.add(1, b);
    m.add(3, c);
    EXPECT_EQ(m.max_height(), 2);
    EXPECT_EQ(m.bit_count(), 3u);
    const auto rows = m.to_rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1], a);
    EXPECT_EQ(rows[1][1], b);
    EXPECT_EQ(rows[0][3], c);
    EXPECT_EQ(rows[1][3], kNoNet);
}

TEST(BitMatrix, RejectsNonPositiveColumns) {
    EXPECT_THROW(BitMatrix(0), std::invalid_argument);
}

// --- Accurate multipliers under every accumulation scheme -----------------

class AccurateMulExhaustive
    : public testing::TestWithParam<std::tuple<int, AccumulationScheme>> {};

TEST_P(AccurateMulExhaustive, MatchesNativeProduct) {
    const auto [width, scheme] = GetParam();
    const MultiplierNetlist m = build_accurate_multiplier(width, scheme);
    const uint64_t side = uint64_t{1} << width;

    std::vector<uint64_t> as, bs;
    as.reserve(64);
    bs.reserve(64);
    auto flush = [&] {
        if (as.empty()) return;
        const auto prods = simulate_batch(m, as, bs);
        for (size_t i = 0; i < as.size(); ++i) {
            ASSERT_EQ(prods[i], as[i] * bs[i])
                << as[i] << "*" << bs[i] << " scheme "
                << accumulation_scheme_name(scheme);
        }
        as.clear();
        bs.clear();
    };
    for (uint64_t a = 0; a < side; ++a) {
        for (uint64_t b = 0; b < side; ++b) {
            as.push_back(a);
            bs.push_back(b);
            if (as.size() == 64) flush();
        }
    }
    flush();
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSchemes, AccurateMulExhaustive,
    testing::Combine(testing::Values(2, 3, 4, 5, 6),
                     testing::Values(AccumulationScheme::kRowRipple,
                                     AccumulationScheme::kWallace,
                                     AccumulationScheme::kDadda,
                                     AccumulationScheme::kRowFastCpa)),
    [](const auto& pinfo) {
        return "w" + std::to_string(std::get<0>(pinfo.param)) + "_" +
               scheme_token(std::get<1>(pinfo.param));
    });

class AccurateMulRandom
    : public testing::TestWithParam<std::tuple<int, AccumulationScheme>> {};

TEST_P(AccurateMulRandom, MatchesNativeProductOnRandomOperands) {
    const auto [width, scheme] = GetParam();
    const MultiplierNetlist m = build_accurate_multiplier(width, scheme);
    Xoshiro256 rng(0xabcd + static_cast<uint64_t>(width));
    const uint64_t mask = (width == 64) ? ~uint64_t{0} : (uint64_t{1} << width) - 1;

    std::vector<uint64_t> as(64), bs(64);
    for (int pass = 0; pass < 8; ++pass) {
        for (int i = 0; i < 64; ++i) {
            as[i] = rng.next() & mask;
            bs[i] = rng.next() & mask;
        }
        const auto prods = simulate_batch_wide(m, as, {}, bs, {});
        for (int i = 0; i < 64; ++i) {
            const U256 expect = mul_128(as[i], 0, bs[i], 0);
            ASSERT_EQ(prods[i], expect) << width << "-bit " << as[i] << "*" << bs[i];
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    WiderWidths, AccurateMulRandom,
    testing::Combine(testing::Values(8, 12, 16, 24, 32),
                     testing::Values(AccumulationScheme::kRowRipple,
                                     AccumulationScheme::kWallace,
                                     AccumulationScheme::kDadda,
                                     AccumulationScheme::kRowFastCpa)),
    [](const auto& pinfo) {
        return "w" + std::to_string(std::get<0>(pinfo.param)) + "_" +
               scheme_token(std::get<1>(pinfo.param));
    });

TEST(AccurateMul, WideWidth64RandomSpotChecks) {
    const MultiplierNetlist m = build_accurate_multiplier(64, AccumulationScheme::kWallace);
    Xoshiro256 rng(99);
    std::vector<uint64_t> as(8), bs(8);
    for (int i = 0; i < 8; ++i) {
        as[i] = rng.next();
        bs[i] = rng.next();
    }
    const auto prods = simulate_batch_wide(m, as, {}, bs, {});
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(prods[i], mul_128(as[i], 0, bs[i], 0));
    }
}

TEST(AccurateMul, ProductBitCountIsTwiceWidth) {
    for (int w : {2, 4, 8}) {
        const MultiplierNetlist m = build_accurate_multiplier(w);
        EXPECT_EQ(m.p_bits.size(), static_cast<size_t>(2 * w));
        EXPECT_EQ(m.net.outputs().size(), static_cast<size_t>(2 * w));
        EXPECT_EQ(m.net.inputs().size(), static_cast<size_t>(2 * w));
    }
}

TEST(AccurateMul, WallaceShallowerThanRowRipple) {
    const MultiplierNetlist ripple = build_accurate_multiplier(16, AccumulationScheme::kRowRipple);
    const MultiplierNetlist wallace = build_accurate_multiplier(16, AccumulationScheme::kWallace);
    // Tree reduction must shorten the logic depth substantially at 16 bits.
    EXPECT_LT(logic_depth(wallace.net), logic_depth(ripple.net));
}

TEST(MulNetlist, SimulateOneMatchesBatch) {
    const MultiplierNetlist m = build_accurate_multiplier(8);
    EXPECT_EQ(simulate_one(m, 13, 17), 221u);
    EXPECT_EQ(simulate_one(m, 255, 255), 65025u);
}

TEST(MulNetlist, RejectsBadLaneCounts) {
    const MultiplierNetlist m = build_accurate_multiplier(4);
    std::vector<uint64_t> a65(65, 1), b65(65, 1);
    EXPECT_THROW(simulate_batch(m, a65, b65), std::invalid_argument);
    std::vector<uint64_t> a1(1, 1), b2(2, 1);
    EXPECT_THROW(simulate_batch(m, a1, b2), std::invalid_argument);
}

TEST(MulNetlist, MakeOperandPortsValidatesWidth) {
    Netlist nl;
    EXPECT_THROW(make_operand_ports(nl, 0), std::invalid_argument);
    EXPECT_THROW(make_operand_ports(nl, 200), std::invalid_argument);
}

}  // namespace
}  // namespace sdlc
