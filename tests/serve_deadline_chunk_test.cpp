// Deadline + chunking integration: a deadline-cancelled sweep's partial
// point stream is a strict prefix of the full enumeration-order stream,
// and a chunked export byte-concatenates to exactly the unchunked
// dse_tool --json payload.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/thread_pool.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/sink.h"
#include "util/json_parse.h"

namespace sdlc::serve {
namespace {

class RecordingSink final : public ResponseSink {
public:
    void write_line(const std::string& line) override {
        std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(line);
        if (line.find("\"event\": \"done\"") != std::string::npos) ++done_;
        cv_.notify_all();
    }

    std::vector<std::string> wait_done(size_t n = 1) {
        std::unique_lock<std::mutex> lock(mutex_);
        EXPECT_TRUE(cv_.wait_for(lock, std::chrono::seconds(60), [&] { return done_ >= n; }));
        return lines_;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::string> lines_;
    size_t done_ = 0;
};

JsonValue parse_event(const std::string& line) {
    JsonValue v;
    std::string error;
    EXPECT_TRUE(json_parse(line, v, &error)) << line << " — " << error;
    return v;
}

/// The point payloads of a request's stream, id stripped, in order.
std::vector<std::string> point_payloads(const std::vector<std::string>& lines) {
    std::vector<std::string> out;
    for (const std::string& line : lines) {
        if (line.find("\"event\": \"point\"") == std::string::npos) continue;
        out.push_back(line.substr(line.find("\"index\"")));
    }
    return out;
}

std::string error_code(const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
        const JsonValue e = parse_event(line);
        const JsonValue* kind = e.find("event");
        if (kind != nullptr && kind->is_string() && kind->string == "error") {
            return e.find("code")->string;
        }
    }
    return "";
}

// ------------------------------------------------------ evaluator level ----

TEST(DeadlineEvaluator, ExpiredDeadlineAbortsBeforeAnyPoint) {
    SweepSpec spec;
    spec.widths = {4};
    EvalOptions opts;
    opts.evaluate_hardware = false;
    opts.deadline = std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
    size_t streamed = 0;
    opts.on_point = [&](size_t, const DesignPoint&) { ++streamed; };
    EXPECT_THROW((void)evaluate_sweep(spec, opts), SweepDeadlineExceeded);
    EXPECT_EQ(streamed, 0u) << "an already-expired budget must evaluate nothing";
}

TEST(DeadlineEvaluator, PartialStreamIsStrictPrefixOfFullStream) {
    SweepSpec spec;
    spec.widths = {6};
    EvalOptions base;
    base.evaluate_hardware = false;
    ThreadPool pool(1);  // strict enumeration order point-by-point
    base.pool = &pool;

    std::vector<size_t> full;
    EvalOptions full_opts = base;
    full_opts.on_point = [&](size_t index, const DesignPoint&) { full.push_back(index); };
    const std::vector<DesignPoint> points = evaluate_sweep(spec, full_opts);
    ASSERT_EQ(full.size(), points.size());

    // Slow each point down so a ~25 ms budget trips partway through the
    // sweep (wherever that lands — the prefix property must hold at any
    // cut).
    std::vector<size_t> partial;
    EvalOptions slow = base;
    slow.deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(25);
    slow.on_point = [&](size_t index, const DesignPoint&) {
        partial.push_back(index);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    };
    EXPECT_THROW((void)evaluate_sweep(spec, slow), SweepDeadlineExceeded);

    EXPECT_LT(partial.size(), full.size());
    for (size_t i = 0; i < partial.size(); ++i) {
        EXPECT_EQ(partial[i], full[i]) << "streamed indices must be the enumeration prefix";
    }
}

// -------------------------------------------------------- service level ----

TEST(ServeDeadline, DeadlineExceededEventAndPrefixStream) {
    ServiceOptions opts;
    opts.eval_threads = 1;
    SweepService service(opts);

    // Reference: the full stream of the same request, no deadline.
    auto full_sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line("{\"id\": \"full\", \"spec\": {\"width\": 8}}", full_sink));
    const auto full_events = full_sink->wait_done();
    const auto full_points = point_payloads(full_events);
    ASSERT_FALSE(full_points.empty());

    // A 1 ms budget on a fresh service cannot finish a width-8 sweep: the
    // stream must carry a structured deadline_exceeded error, a failed
    // done, and only a prefix of the full point stream. (The second run
    // uses a warm cache, which only makes points faster — the budget is
    // still far below one sweep.)
    auto cut_sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(
        "{\"id\": \"cut\", \"spec\": {\"width\": 8}, \"deadline_ms\": 1}", cut_sink));
    const auto cut_events = cut_sink->wait_done();
    EXPECT_EQ(error_code(cut_events), "deadline_exceeded");
    const JsonValue done = parse_event(cut_events.back());
    EXPECT_FALSE(done.find("ok")->boolean);

    const auto cut_points = point_payloads(cut_events);
    EXPECT_LT(cut_points.size(), full_points.size());
    for (size_t i = 0; i < cut_points.size(); ++i) {
        EXPECT_EQ(cut_points[i], full_points[i])
            << "a deadline cut must stream a byte-identical prefix";
    }
    EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

// ------------------------------------------------------------- chunking ----

TEST(ResultChunkerTest, BoundedChunksConcatenateExactly) {
    const struct {
        size_t payload_bytes;
        size_t chunk_bytes;
    } cases[] = {{1, 16}, {16, 16}, {17, 16}, {32, 16}, {33, 16}, {1000, 64}, {64, 1000}};
    for (const auto& c : cases) {
        std::string payload;
        for (size_t i = 0; i < c.payload_bytes; ++i) {
            payload.push_back(static_cast<char>('a' + i % 26));
        }
        BufferSink sink;
        ResultChunker chunker(sink, "x", c.chunk_bytes);
        // Feed in awkward piece sizes to exercise buffering across pieces.
        for (size_t at = 0; at < payload.size(); at += 7) {
            chunker.feed(std::string_view(payload).substr(at, 7));
        }
        chunker.finish();

        std::string reassembled;
        const std::vector<std::string> lines = sink.lines();
        for (size_t i = 0; i < lines.size(); ++i) {
            const JsonValue e = parse_event(lines[i]);
            EXPECT_EQ(e.find("event")->string, "result_chunk");
            EXPECT_EQ(static_cast<size_t>(e.find("seq")->number), i);
            EXPECT_EQ(e.find("last")->boolean, i + 1 == lines.size());
            const std::string& data = e.find("data")->string;
            if (i + 1 < lines.size()) {
                EXPECT_EQ(data.size(), c.chunk_bytes) << "non-final chunks are exactly full";
            } else {
                EXPECT_LE(data.size(), c.chunk_bytes);
                EXPECT_GE(data.size(), 1u) << "the last chunk is never empty";
            }
            reassembled += data;
        }
        EXPECT_EQ(reassembled, payload)
            << "payload " << c.payload_bytes << " chunk " << c.chunk_bytes;
    }
}

TEST(ServeChunking, ChunkedExportMatchesBatchExportByteForByte) {
    // Reference: what dse_tool --json writes for this sweep (cold cache).
    SweepSpec spec;
    spec.widths = {5};
    EvalOptions eval;
    SweepStats stats;
    const std::vector<DesignPoint> points = evaluate_sweep(spec, eval, &stats);
    const ParetoResult pareto = pareto_analysis(objective_matrix(points));
    const std::string expected = dse_to_json(points, pareto.rank, stats);

    SweepService service;
    auto sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(
        "{\"id\": \"c\", \"spec\": {\"width\": 5}, \"export\": true, \"chunk_bytes\": 200}",
        sink));
    const auto events = sink->wait_done();

    std::string reassembled;
    size_t expected_seq = 0;
    bool saw_last = false;
    for (const std::string& line : events) {
        if (line.find("\"event\": \"result_chunk\"") == std::string::npos) continue;
        const JsonValue e = parse_event(line);
        EXPECT_FALSE(saw_last) << "no chunk may follow the last one";
        EXPECT_EQ(static_cast<size_t>(e.find("seq")->number), expected_seq++);
        EXPECT_LE(e.find("data")->string.size(), 200u);
        saw_last = e.find("last")->boolean;
        reassembled += e.find("data")->string;
    }
    EXPECT_TRUE(saw_last);
    EXPECT_GT(expected_seq, 1u) << "a multi-KB export at chunk 200 must span several chunks";
    EXPECT_EQ(reassembled, expected);

    // No monolithic result event when chunking was requested.
    for (const std::string& line : events) {
        EXPECT_EQ(line.find("\"event\": \"result\","), std::string::npos) << line;
    }
}

TEST(ServeChunking, ChunkedAndUnchunkedPayloadsAreIdentical) {
    // One request, chunked vs not. The export's summary embeds cache
    // hit/miss counts, so each run gets its own fresh service — identical
    // cold pre-state — and the payloads must then match byte for byte.
    const std::string chunked_line =
        "{\"id\": \"a\", \"spec\": {\"width\": 4, \"variants\": [\"sdlc\"]},"
        " \"export\": true, \"chunk_bytes\": 64}";
    const std::string plain_line =
        "{\"id\": \"a\", \"spec\": {\"width\": 4, \"variants\": [\"sdlc\"]},"
        " \"export\": true}";

    auto run = [](const std::string& line) {
        SweepService service;
        auto sink = std::make_shared<RecordingSink>();
        EXPECT_TRUE(service.submit_line(line, sink));
        return sink->wait_done();
    };

    std::string from_chunks;
    for (const std::string& line : run(chunked_line)) {
        if (line.find("\"event\": \"result_chunk\"") == std::string::npos) continue;
        from_chunks += parse_event(line).find("data")->string;
    }
    std::string from_result;
    for (const std::string& line : run(plain_line)) {
        if (line.find("\"event\": \"result\",") == std::string::npos) continue;
        from_result = parse_event(line).find("data")->string;
    }
    ASSERT_FALSE(from_result.empty());
    EXPECT_EQ(from_chunks, from_result);
}

}  // namespace
}  // namespace sdlc::serve
