// Tests for the signed (two's-complement) SDLC extension.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/signed_mul.h"
#include "util/rng.h"

namespace sdlc {
namespace {

/// Sign-extends the low `width` bits of `raw` into int64.
int64_t sign_extend(uint64_t raw, int width) {
    const uint64_t m = uint64_t{1} << (width - 1);
    return static_cast<int64_t>((raw ^ m) - m);
}

TEST(SignedMul, SignRulesAroundZero) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    EXPECT_EQ(sdlc_multiply_signed(plan, 0, 77), 0);
    EXPECT_EQ(sdlc_multiply_signed(plan, -5, 0), 0);
    // a = 8 is a power of two, so the SDLC core is exact for any b.
    EXPECT_EQ(sdlc_multiply_signed(plan, 8, 11), 88);
    EXPECT_EQ(sdlc_multiply_signed(plan, -8, 11), -88);
    EXPECT_EQ(sdlc_multiply_signed(plan, -8, -11), 88);
    // 7 * 11 genuinely approximates (B = 1011 activates the row-0/1 pair):
    // error = (a & a<<1) masked = 6, so the product is 71, negated with sign.
    EXPECT_EQ(sdlc_multiply_signed(plan, 7, 11), 71);
    EXPECT_EQ(sdlc_multiply_signed(plan, -7, 11), -71);
}

TEST(SignedMul, ErrorMagnitudeMatchesUnsignedCore) {
    // By construction |error(a,b)| == error(|a|,|b|) of the unsigned core.
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    for (int64_t a = -128; a < 128; a += 7) {
        for (int64_t b = -128; b < 128; b += 5) {
            const uint64_t ma = static_cast<uint64_t>(a < 0 ? -a : a);
            const uint64_t mb = static_cast<uint64_t>(b < 0 ? -b : b);
            EXPECT_EQ(sdlc_signed_error_distance(plan, a, b),
                      sdlc_error_distance(plan, ma, mb))
                << a << "*" << b;
        }
    }
}

TEST(SignedMul, IntMinOperandIsHandled) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    // -128 * -128 = 16384; magnitude 128 is a power of two, so SDLC is exact.
    EXPECT_EQ(sdlc_multiply_signed(plan, -128, -128), 16384);
    EXPECT_EQ(sdlc_multiply_signed(plan, -128, 3), -384);
}

TEST(SignedMul, RejectsBadWidthAndRange) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    EXPECT_THROW((void)sdlc_multiply_signed(plan, 200, 1), std::invalid_argument);
    EXPECT_THROW((void)sdlc_multiply_signed(plan, 1, -129), std::invalid_argument);
    const ClusterPlan wide = ClusterPlan::make(32, 2);
    EXPECT_THROW((void)sdlc_multiply_signed(wide, 1, 1), std::invalid_argument);
    EXPECT_THROW((void)build_sdlc_signed_multiplier(32), std::invalid_argument);
}

class SignedNetlist : public testing::TestWithParam<int> {};

TEST_P(SignedNetlist, MatchesFunctionalModelExhaustive) {
    const int width = GetParam();
    SdlcOptions opts;
    const MultiplierNetlist m = build_sdlc_signed_multiplier(width, opts);
    const ClusterPlan plan = ClusterPlan::make(width, 2);
    const uint64_t side = uint64_t{1} << width;
    const uint64_t mask2n = (uint64_t{1} << (2 * width)) - 1;

    std::vector<uint64_t> as, bs;
    auto flush = [&] {
        if (as.empty()) return;
        const auto prods = simulate_batch(m, as, bs);
        for (size_t i = 0; i < as.size(); ++i) {
            const int64_t expect =
                sdlc_multiply_signed(plan, sign_extend(as[i], width), sign_extend(bs[i], width));
            ASSERT_EQ(prods[i], static_cast<uint64_t>(expect) & mask2n)
                << sign_extend(as[i], width) << "*" << sign_extend(bs[i], width);
        }
        as.clear();
        bs.clear();
    };
    for (uint64_t a = 0; a < side; ++a) {
        for (uint64_t b = 0; b < side; ++b) {
            as.push_back(a);
            bs.push_back(b);
            if (as.size() == 64) flush();
        }
    }
    flush();
}

INSTANTIATE_TEST_SUITE_P(Widths, SignedNetlist, testing::Values(4, 5, 6),
                         [](const auto& pinfo) { return "w" + std::to_string(pinfo.param); });

TEST(SignedNetlist, EightBitRandomSpotChecks) {
    SdlcOptions opts;
    opts.depth = 3;
    const MultiplierNetlist m = build_sdlc_signed_multiplier(8, opts);
    const ClusterPlan plan = ClusterPlan::make(8, 3);
    Xoshiro256 rng(2718);
    std::vector<uint64_t> as(64), bs(64);
    for (int pass = 0; pass < 16; ++pass) {
        for (int i = 0; i < 64; ++i) {
            as[i] = rng.next() & 0xff;
            bs[i] = rng.next() & 0xff;
        }
        const auto prods = simulate_batch(m, as, bs);
        for (int i = 0; i < 64; ++i) {
            const int64_t expect =
                sdlc_multiply_signed(plan, sign_extend(as[i], 8), sign_extend(bs[i], 8));
            ASSERT_EQ(prods[i], static_cast<uint64_t>(expect) & 0xffff);
        }
    }
}

}  // namespace
}  // namespace sdlc
