// Error-engine policy and threading-contract tests.
//
// Two regressions pinned here, both fixed in the same change as the
// bit-sliced engine:
//
//   1. Thread explosion: exhaustive_metrics() used to spawn
//      hardware_concurrency() raw std::threads on EVERY call. A resident
//      service evaluating hundreds of exhaustive points per request
//      multiplied that into hundreds of short-lived threads, all fighting
//      the service's own ThreadPool. The contract now: default calls run
//      inline, a provided ThreadPool is sharded over, and dedicated
//      threads appear only for an explicit max_threads > 1.
//
//   2. The hard-coded exhaustive-vs-sampled cutoff: one width for every
//      kernel path, so a ~3 ns/op accurate config was sampled at width 11
//      while a ~30 ns/op planned config ran exhaustive at width 10. The
//      cutoff is now resolved per path from measured calibration under a
//      time budget; resolution is pure, only ever promotes, and pinned
//      requests bypass it entirely.
//
// The policy functions (select_error_engine, resolve_exhaustive_cutoffs,
// describe_exhaustive_cutoffs, apply_auto_exhaustive, tally_error_engines)
// are pure, so they are tested with injected calibrations — no timing
// dependence.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/approx_multiplier.h"
#include "core/kernels.h"
#include "core/kernels_sliced.h"
#include "dse/evaluator.h"
#include "dse/sweep.h"
#include "error/calibrate.h"
#include "error/evaluate.h"
#include "error/evaluate_sliced.h"
#include "serve/service.h"
#include "serve/sink.h"
#include "util/thread_pool.h"

namespace sdlc {
namespace {

// ---------------------------------------------------- threading contract ----

/// Current thread count of this process (Linux: /proc/self/status).
unsigned count_threads() {
    std::ifstream status("/proc/self/status");
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("Threads:", 0) == 0) {
            return static_cast<unsigned>(std::stoul(line.substr(8)));
        }
    }
    ADD_FAILURE() << "could not read Threads: from /proc/self/status";
    return 0;
}

MultiplierConfig sdlc_config(int width, int depth) {
    MultiplierConfig cfg;
    cfg.width = width;
    cfg.depth = depth;
    cfg.variant = MultiplierVariant::kSdlc;
    return cfg;
}

TEST(EvalThreading, DefaultCallsSpawnNoThreads) {
    // The regression: a default (max_threads = 0) exhaustive evaluation
    // must run inline. Run a batch of them on a single pool worker while
    // the main thread samples the process thread count — under the old
    // per-call std::thread spawning the count visibly exceeds the
    // baseline; under the contract it can never move.
    const MultiplierConfig config = sdlc_config(8, 3);
    const MultiplyKernel scalar(config);
    const SlicedMultiplyKernel sliced(config);

    ThreadPool pool(1);
    const unsigned baseline = count_threads();
    std::atomic<bool> running{true};
    pool.submit([&] {
        for (int i = 0; i < 50; ++i) {
            (void)exhaustive_metrics(config.width,
                                     [&](uint64_t a, uint64_t b) { return scalar(a, b); });
            (void)exhaustive_metrics_sliced(sliced);
        }
        running.store(false);
    });
    unsigned max_seen = 0;
    while (running.load()) max_seen = std::max(max_seen, count_threads());
    pool.wait_idle();
    EXPECT_LE(max_seen, baseline) << "default exhaustive evaluation spawned threads";
    EXPECT_EQ(count_threads(), baseline);
}

TEST(EvalThreading, PoolShardingIdenticalAndExplicitThreadsStillWork) {
    const MultiplierConfig config = sdlc_config(7, 2);
    const MultiplyKernel kernel(config);
    const auto f = [&kernel](uint64_t a, uint64_t b) { return kernel(a, b); };

    const ErrorMetrics inline_m = exhaustive_metrics(config.width, f);
    ThreadPool pool(3);
    EXPECT_EQ(exhaustive_metrics(config.width, f, 0, &pool), inline_m);
    // Explicit worker counts are the CLI escape hatch; still bit-identical.
    EXPECT_EQ(exhaustive_metrics(config.width, f, 4), inline_m);
    EXPECT_EQ(exhaustive_metrics(config.width, f, 1), inline_m);
}

TEST(EvalThreading, ServiceThreadCountBoundedUnderConcurrentRequests) {
    // Service level: total threads = request workers + pool workers, fixed
    // at construction; concurrent exhaustive sweep requests must not grow
    // it. With the old per-call spawning, every one of the ~30 exhaustive
    // points below would briefly add threads.
    using serve::ResponseSink;
    class DoneSink final : public ResponseSink {
    public:
        void write_line(const std::string& line) override {
            if (line.find("\"event\": \"done\"") != std::string::npos) done.store(true);
        }
        std::atomic<bool> done{false};
    };

    serve::ServiceOptions opts;
    opts.eval_threads = 2;
    opts.request_workers = 2;
    opts.auto_exhaustive = false;  // no calibration cost in this test
    serve::SweepService service(opts);
    const unsigned baseline = count_threads();

    std::vector<std::shared_ptr<DoneSink>> sinks;
    for (int i = 0; i < 6; ++i) {
        auto sink = std::make_shared<DoneSink>();
        std::ostringstream line;
        line << "{\"id\": \"t" << i
             << "\", \"spec\": {\"width\": 6, \"variants\": [\"sdlc\"], "
                "\"schemes\": [\"ripple\"]}}";
        ASSERT_TRUE(service.submit_line(line.str(), sink));
        sinks.push_back(std::move(sink));
    }
    unsigned max_seen = 0;
    auto all_done = [&] {
        for (const auto& sink : sinks) {
            if (!sink->done.load()) return false;
        }
        return true;
    };
    while (!all_done()) max_seen = std::max(max_seen, count_threads());
    EXPECT_LE(max_seen, baseline) << "service spawned per-request threads";
    service.shutdown();
}

// ------------------------------------------------------ cutoff resolution ----

TEST(CutoffResolution, BudgetWidthsPerPath) {
    // Injected calibration, 1 s budget: cutoff = largest width whose full
    // 4^w-pair sweep fits the budget at the measured rate.
    EngineCalibration cal;
    cal.accurate_ns = 1.0;  // 4^14 = 2.7e8 ops fits 1e9 ns, 4^15 does not
    cal.fast2_ns = 4.0;     // 4^13 fits 2.5e8-op budget
    cal.planned_ns = 16.0;  // 4^12 fits 6.25e7
    cal.sliced_ns = 0.25;   // 4^15 fits 4e9, 4^16 does not
    const ExhaustiveCutoffs cut = resolve_exhaustive_cutoffs(cal, 10, 1000.0);
    EXPECT_EQ(cut.accurate, 14);
    EXPECT_EQ(cut.fast2, 13);
    EXPECT_EQ(cut.planned, 12);
    EXPECT_EQ(cut.sliced, 15);

    // Pure: same inputs, same result.
    const ExhaustiveCutoffs again = resolve_exhaustive_cutoffs(cal, 10, 1000.0);
    EXPECT_EQ(again.accurate, cut.accurate);
    EXPECT_EQ(again.sliced, cut.sliced);
}

TEST(CutoffResolution, NeverDemotesAndClampsTo16) {
    EngineCalibration cal;
    cal.accurate_ns = 1e9;  // absurdly slow: stays at the floor
    cal.fast2_ns = 1e-9;    // absurdly fast: clamps at width 16
    cal.planned_ns = 0.0;   // unmeasured: stays at the floor
    cal.sliced_ns = -1.0;   // nonsense: stays at the floor
    const ExhaustiveCutoffs cut = resolve_exhaustive_cutoffs(cal, 10, 2000.0);
    EXPECT_EQ(cut.accurate, 10);
    EXPECT_EQ(cut.fast2, 16);
    EXPECT_EQ(cut.planned, 10);
    EXPECT_EQ(cut.sliced, 10);

    // A zero budget cannot demote below the floor either.
    const ExhaustiveCutoffs zero = resolve_exhaustive_cutoffs(cal, 12, 0.0);
    EXPECT_EQ(zero.accurate, 12);
    EXPECT_EQ(zero.fast2, 12);
}

TEST(CutoffResolution, MeasuredCalibrationIsSane) {
    // The real measurement: positive rates, and the sliced engine beats
    // the scalar planned path on any machine this runs on (64 lanes per
    // bitwise op vs one product per call).
    const EngineCalibration& cal = engine_calibration();
    EXPECT_GT(cal.accurate_ns, 0.0);
    EXPECT_GT(cal.fast2_ns, 0.0);
    EXPECT_GT(cal.planned_ns, 0.0);
    EXPECT_GT(cal.sliced_ns, 0.0);
    EXPECT_LT(cal.sliced_ns, cal.planned_ns);
    // Lazy singleton: same object, no re-measurement.
    EXPECT_EQ(&engine_calibration(), &cal);
}

// -------------------------------------------------------- engine selection ----

MultiplierConfig make_config(int width, int depth, MultiplierVariant variant) {
    MultiplierConfig cfg;
    cfg.width = width;
    cfg.depth = depth;
    cfg.variant = variant;
    return cfg;
}

TEST(EngineSelection, DefaultsFollowFixedCutoff) {
    const EvalOptions opts;  // exhaustive_max_width = 10, use_sliced = true
    EXPECT_EQ(select_error_engine(make_config(8, 3, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kExhaustiveSliced);
    EXPECT_EQ(select_error_engine(make_config(10, 2, MultiplierVariant::kCompensated), opts),
              ErrorEngine::kExhaustiveSliced);
    // Not sliced-eligible: exact config runs the scalar accurate kernel.
    EXPECT_EQ(select_error_engine(make_config(8, 2, MultiplierVariant::kAccurate), opts),
              ErrorEngine::kExhaustiveScalar);
    // Above the cutoff: sampled, for every path.
    EXPECT_EQ(select_error_engine(make_config(12, 3, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kSampled);
    EXPECT_EQ(select_error_engine(make_config(12, 2, MultiplierVariant::kAccurate), opts),
              ErrorEngine::kSampled);
}

TEST(EngineSelection, NoSlicedFallsBackToScalar) {
    EvalOptions opts;
    opts.use_sliced = false;
    EXPECT_EQ(select_error_engine(make_config(8, 3, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kExhaustiveScalar);
    EXPECT_EQ(select_error_engine(make_config(12, 3, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kSampled);
}

TEST(EngineSelection, PerPathCutoffsPromoteIndependently) {
    EvalOptions opts;
    opts.exhaustive_width_accurate = 14;
    opts.exhaustive_width_fast2 = 13;
    opts.exhaustive_width_planned = 11;
    opts.exhaustive_width_sliced = 14;
    // Accurate path follows its own cutoff.
    EXPECT_EQ(select_error_engine(make_config(14, 2, MultiplierVariant::kAccurate), opts),
              ErrorEngine::kExhaustiveScalar);
    EXPECT_EQ(select_error_engine(make_config(15, 2, MultiplierVariant::kAccurate), opts),
              ErrorEngine::kSampled);
    // Sliced-eligible configs follow the sliced cutoff.
    EXPECT_EQ(select_error_engine(make_config(14, 3, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kExhaustiveSliced);
    EXPECT_EQ(select_error_engine(make_config(15, 3, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kSampled);
    // fast2 (sdlc depth 2) is also sliced-eligible, so the sliced engine
    // carries it up to max(sliced, fast2) = 14.
    EXPECT_EQ(select_error_engine(make_config(14, 2, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kExhaustiveSliced);

    // With sliced disabled, a width inside the scalar-path cutoff must
    // still run scalar exhaustive — never demoted to sampling.
    opts.use_sliced = false;
    EXPECT_EQ(select_error_engine(make_config(13, 2, MultiplierVariant::kSdlc), opts),
              ErrorEngine::kExhaustiveScalar);
    opts.use_sliced = true;

    // Conversely, a scalar cutoff above the sliced one promotes the
    // sliced engine too: the choice of engine never makes a point
    // *sampled* that the scalar path would have run exhaustive.
    EvalOptions wide;
    wide.exhaustive_width_planned = 12;
    wide.exhaustive_width_sliced = 10;
    EXPECT_EQ(select_error_engine(make_config(12, 4, MultiplierVariant::kSdlc), wide),
              ErrorEngine::kExhaustiveSliced);
}

TEST(EngineSelection, DescribeCutoffs) {
    EvalOptions opts;
    EXPECT_EQ(describe_exhaustive_cutoffs(opts), "fixed(10)");
    opts.exhaustive_max_width = 8;
    EXPECT_EQ(describe_exhaustive_cutoffs(opts), "fixed(8)");
    opts.exhaustive_width_accurate = 14;
    opts.exhaustive_width_fast2 = 13;
    opts.exhaustive_width_planned = 12;
    opts.exhaustive_width_sliced = 14;
    EXPECT_EQ(describe_exhaustive_cutoffs(opts),
              "auto(accurate=14,fast2=13,planned=12,sliced=14)");
    // Unset fields fall back to the fixed cutoff in the description, same
    // as in selection.
    opts.exhaustive_width_planned = 0;
    EXPECT_EQ(describe_exhaustive_cutoffs(opts),
              "auto(accurate=14,fast2=13,planned=8,sliced=14)");
}

TEST(EngineSelection, ApplyAutoExhaustiveGating) {
    // Pinned requests (any per-path width set) are left untouched: the
    // submitter already resolved or fixed the cutoffs.
    SweepSpec wide;
    wide.widths = {12};
    EvalOptions pinned;
    pinned.exhaustive_width_sliced = 11;
    apply_auto_exhaustive(pinned, wide, 2000.0);
    EXPECT_EQ(pinned.exhaustive_width_accurate, 0);
    EXPECT_EQ(pinned.exhaustive_width_sliced, 11);

    // Sweeps entirely at or below the fixed cutoff: no-op (and no
    // calibration cost) — promotion could not change any engine choice.
    SweepSpec small;
    small.widths = {4, 8};
    EvalOptions untouched;
    apply_auto_exhaustive(untouched, small, 2000.0);
    EXPECT_EQ(untouched.exhaustive_width_accurate, 0);
    EXPECT_EQ(untouched.exhaustive_width_sliced, 0);
    EXPECT_EQ(describe_exhaustive_cutoffs(untouched), "fixed(10)");

    // A sweep above the cutoff resolves all four paths; never below the
    // floor (auto only promotes).
    EvalOptions resolved;
    apply_auto_exhaustive(resolved, wide, 1000.0);
    EXPECT_GE(resolved.exhaustive_width_accurate, resolved.exhaustive_max_width);
    EXPECT_GE(resolved.exhaustive_width_fast2, resolved.exhaustive_max_width);
    EXPECT_GE(resolved.exhaustive_width_planned, resolved.exhaustive_max_width);
    EXPECT_GE(resolved.exhaustive_width_sliced, resolved.exhaustive_max_width);
    EXPECT_EQ(describe_exhaustive_cutoffs(resolved).rfind("auto(", 0), 0u);
}

TEST(EngineSelection, TallyMatchesSelection) {
    SweepSpec spec;
    spec.widths = {6};
    const std::vector<MultiplierConfig> configs = spec.enumerate();
    const EvalOptions opts;
    const ErrorEngineTally tally = tally_error_engines(configs, opts);
    size_t sliced = 0, scalar = 0, sampled = 0;
    for (const MultiplierConfig& c : configs) {
        switch (select_error_engine(c, opts)) {
            case ErrorEngine::kExhaustiveSliced: ++sliced; break;
            case ErrorEngine::kExhaustiveScalar: ++scalar; break;
            case ErrorEngine::kSampled: ++sampled; break;
        }
    }
    EXPECT_EQ(tally.sliced, sliced);
    EXPECT_EQ(tally.scalar, scalar);
    EXPECT_EQ(tally.sampled, sampled);
    EXPECT_EQ(tally.sliced + tally.scalar + tally.sampled, configs.size());
    // Width-6 grid: every approximate config is sliced, every accurate
    // one scalar, nothing sampled.
    EXPECT_EQ(tally.sampled, 0u);
    EXPECT_EQ(tally.scalar, 4u);  // accurate x 4 schemes

    EXPECT_STREQ(error_engine_name(ErrorEngine::kExhaustiveSliced), "sliced");
    EXPECT_STREQ(error_engine_name(ErrorEngine::kExhaustiveScalar), "scalar");
    EXPECT_STREQ(error_engine_name(ErrorEngine::kSampled), "sampled");
}

TEST(EngineSelection, SweepResultsIdenticalWithAndWithoutSliced) {
    // End to end through evaluate_sweep: the engine knob changes speed
    // only. Hardware evaluation off keeps this a pure error-path test.
    SweepSpec spec;
    spec.widths = {5};
    EvalOptions opts;
    opts.threads = 2;
    opts.evaluate_hardware = false;
    SweepStats with_stats;
    const std::vector<DesignPoint> with_sliced = evaluate_sweep(spec, opts, &with_stats);
    opts.use_sliced = false;
    SweepStats without_stats;
    const std::vector<DesignPoint> without_sliced = evaluate_sweep(spec, opts, &without_stats);

    ASSERT_EQ(with_sliced.size(), without_sliced.size());
    for (size_t i = 0; i < with_sliced.size(); ++i) {
        EXPECT_EQ(with_sliced[i].error, without_sliced[i].error) << i;
    }
    EXPECT_GT(with_stats.engines.sliced, 0u);
    EXPECT_EQ(without_stats.engines.sliced, 0u);
    EXPECT_EQ(with_stats.engines.sliced + with_stats.engines.scalar,
              without_stats.engines.scalar);
    EXPECT_EQ(with_stats.cutoff_desc, "fixed(10)");
}

}  // namespace
}  // namespace sdlc
