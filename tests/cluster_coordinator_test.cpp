// Tests for the cluster sweep coordinator: deterministic shard planning,
// the in-order shard merge (shuffled, interleaved, duplicated and partial
// streams), bit-exact point wire round trips, the evaluator's shard-range
// restriction, the shard sub-request serializer, and distributed_sweep /
// CoordinatorService end to end against in-process worker replicas —
// including dead-worker local fallback and retry accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cluster/coordinator.h"
#include "cluster/shard_plan.h"
#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/point_wire.h"
#include "dse/shard_merge.h"
#include "dse/sweep.h"
#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/socket.h"
#include "serve/transport.h"

namespace sdlc::cluster {
namespace {

using serve::SweepRequest;

// ------------------------------------------------------------ shard plan ----

TEST(ShardPlanTest, CoversSpaceWithBalancedContiguousRanges) {
    const std::vector<IndexRange> plan = plan_shards(0, 103, 8);
    ASSERT_EQ(plan.size(), 8u);
    size_t cursor = 0;
    size_t min_size = SIZE_MAX;
    size_t max_size = 0;
    for (const IndexRange& r : plan) {
        EXPECT_EQ(r.lo, cursor);
        EXPECT_GT(r.hi, r.lo);
        cursor = r.hi;
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
    }
    EXPECT_EQ(cursor, 103u);
    EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlanTest, ClampsToSpaceAndHandlesEmpty) {
    EXPECT_EQ(plan_shards(10, 13, 32).size(), 3u);  // never an empty shard
    EXPECT_TRUE(plan_shards(7, 7, 4).empty());
    const std::vector<IndexRange> sub = plan_shards(5, 11, 2);
    ASSERT_EQ(sub.size(), 2u);
    EXPECT_EQ(sub.front().lo, 5u);
    EXPECT_EQ(sub.back().hi, 11u);
}

TEST(ShardPlanTest, RejectsBadArguments) {
    EXPECT_THROW(plan_shards(4, 2, 2), std::invalid_argument);
    EXPECT_THROW(plan_shards(0, 10, 0), std::invalid_argument);
}

// ----------------------------------------------------------- shard merge ----

DesignPoint marked_point(size_t i) {
    DesignPoint p;
    p.config.width = 4;
    p.error.nmed = static_cast<double>(i);
    return p;
}

TEST(ShardMergerTest, ShuffledAddsEmitInEnumerationOrder) {
    std::vector<size_t> emitted;
    ShardMerger merger(10, 60, [&](size_t index, const DesignPoint& p) {
        emitted.push_back(index);
        EXPECT_EQ(p.error.nmed, static_cast<double>(index));
    });
    std::vector<size_t> order(50);
    for (size_t i = 0; i < order.size(); ++i) order[i] = 10 + i;
    std::mt19937 rng(7);
    std::shuffle(order.begin(), order.end(), rng);
    for (const size_t i : order) merger.add(i, marked_point(i));
    ASSERT_TRUE(merger.complete());
    ASSERT_EQ(emitted.size(), 50u);
    for (size_t i = 0; i < emitted.size(); ++i) EXPECT_EQ(emitted[i], 10 + i);
    const std::vector<DesignPoint> points = merger.take();
    ASSERT_EQ(points.size(), 50u);
    for (size_t i = 0; i < points.size(); ++i) {
        EXPECT_EQ(points[i].error.nmed, static_cast<double>(10 + i));
    }
}

TEST(ShardMergerTest, InterleavedShardStreamsStayOrdered) {
    // Two shard streams delivering concurrently, plus a duplicated range
    // (a retried shard re-sending indices already merged): first write
    // wins and the emission order never changes.
    std::vector<size_t> emitted;
    ShardMerger merger(0, 40, [&](size_t index, const DesignPoint&) {
        emitted.push_back(index);
    });
    std::thread a([&] {
        for (size_t i = 20; i < 40; ++i) merger.add(i, marked_point(i));
    });
    std::thread b([&] {
        for (size_t i = 0; i < 20; ++i) merger.add(i, marked_point(i));
        for (size_t i = 20; i < 30; ++i) merger.add(i, marked_point(999));  // duplicate
    });
    a.join();
    b.join();
    ASSERT_EQ(emitted.size(), 40u);
    for (size_t i = 0; i < emitted.size(); ++i) EXPECT_EQ(emitted[i], i);
    const std::vector<DesignPoint> points = merger.take();
    for (size_t i = 0; i < points.size(); ++i) {
        // A duplicate never overwrites the first delivery.
        EXPECT_EQ(points[i].error.nmed, static_cast<double>(i));
    }
}

TEST(ShardMergerTest, PartialStreamIsStrictPrefix) {
    std::vector<size_t> emitted;
    ShardMerger merger(0, 10, [&](size_t index, const DesignPoint&) {
        emitted.push_back(index);
    });
    merger.add(0, marked_point(0));
    merger.add(5, marked_point(5));  // gap at 1..4: held back
    merger.add(1, marked_point(1));
    EXPECT_EQ(emitted, (std::vector<size_t>{0, 1}));
    EXPECT_FALSE(merger.complete());
    EXPECT_THROW(merger.take(), std::logic_error);
    EXPECT_THROW(merger.add(10, marked_point(10)), std::out_of_range);
}

// ------------------------------------------------------------ point wire ----

TEST(PointWireTest, RoundTripIsBitExact) {
    EvalOptions opts;
    opts.threads = 2;
    const SweepSpec spec;  // default width-8 sweep
    const std::vector<DesignPoint> points = evaluate_sweep(spec, opts);
    ASSERT_FALSE(points.empty());
    for (const DesignPoint& p : points) {
        const std::string blob = design_point_bits(p);
        DesignPoint back;
        std::string error;
        ASSERT_TRUE(parse_design_point_bits(blob, back, &error)) << error;
        EXPECT_EQ(back.config.width, p.config.width);
        EXPECT_EQ(back.config.depth, p.config.depth);
        EXPECT_EQ(back.config.variant, p.config.variant);
        EXPECT_EQ(back.config.scheme, p.config.scheme);
        EXPECT_TRUE(back.error == p.error);
        EXPECT_TRUE(back.hw == p.hw);
        EXPECT_EQ(design_point_bits(back), blob);
    }
}

TEST(PointWireTest, RejectsMalformedBlobs) {
    DesignPoint p;
    EXPECT_FALSE(parse_design_point_bits("", p));
    EXPECT_FALSE(parse_design_point_bits("v2:0", p));
    const std::string good = design_point_bits(marked_point(3));
    EXPECT_TRUE(parse_design_point_bits(good, p));
    EXPECT_FALSE(parse_design_point_bits(good + "0", p));       // trailing bytes
    EXPECT_FALSE(parse_design_point_bits(good.substr(0, good.size() - 1), p));
    std::string upper = good;
    upper[4] = 'A';  // uppercase hex is not canonical
    EXPECT_FALSE(parse_design_point_bits(upper, p));
}

// ------------------------------------------------- evaluator shard range ----

TEST(EvaluatorShardTest, ShardSliceMatchesFullSweepWithGlobalIndices) {
    const SweepSpec spec;
    EvalOptions opts;
    opts.threads = 2;
    const std::vector<DesignPoint> full = evaluate_sweep(spec, opts);
    ASSERT_GT(full.size(), 4u);

    EvalOptions shard = opts;
    shard.shard_lo = 2;
    shard.shard_hi = full.size() - 1;
    std::vector<size_t> indices;
    shard.on_point = [&](size_t index, const DesignPoint&) { indices.push_back(index); };
    const std::vector<DesignPoint> slice = evaluate_sweep(spec, shard);
    ASSERT_EQ(slice.size(), full.size() - 3);
    for (size_t i = 0; i < slice.size(); ++i) {
        EXPECT_TRUE(slice[i].error == full[2 + i].error);
        EXPECT_TRUE(slice[i].hw == full[2 + i].hw);
    }
    ASSERT_EQ(indices.size(), slice.size());
    for (size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], 2 + i);
}

TEST(EvaluatorShardTest, RejectsContradictoryRanges) {
    const SweepSpec spec;
    const size_t count = spec.count();
    EvalOptions opts;
    opts.shard_lo = 3;
    opts.shard_hi = 3;
    EXPECT_THROW(evaluate_sweep(spec, opts), std::invalid_argument);
    opts.shard_lo = 0;
    opts.shard_hi = count + 1;
    EXPECT_THROW(evaluate_sweep(spec, opts), std::invalid_argument);
}

// ------------------------------------------------- shard request round trip --

TEST(SweepRequestJsonTest, RoundTripsThroughTheStrictParser) {
    SweepRequest req;
    req.id = "s7";
    req.spec.widths = {4, 6};
    req.spec.min_depth = 1;
    req.spec.max_depth = 3;
    req.eval.seed = 99;
    req.eval.samples = 4096;
    req.eval.exhaustive_max_width = 6;
    req.eval.distribution = OperandDistribution::kGaussian;
    req.eval.use_hw_cache = false;
    req.stream_points = true;
    req.export_json = false;
    req.deadline_ms = 1234;
    req.shard_lo = 3;
    req.shard_hi = 9;
    req.point_bits = true;

    const std::string line = serve::sweep_request_json(req);
    SweepRequest back;
    serve::RequestError error;
    ASSERT_TRUE(serve::parse_request(line, serve::kDefaultMaxRequestBytes, back, error))
        << error.message;
    EXPECT_EQ(back.id, "s7");
    EXPECT_EQ(back.spec.widths, req.spec.widths);
    EXPECT_EQ(back.spec.max_depth, 3);
    EXPECT_EQ(back.eval.seed, 99u);
    EXPECT_EQ(back.eval.samples, 4096u);
    EXPECT_EQ(back.eval.exhaustive_max_width, 6);
    EXPECT_EQ(back.eval.distribution, OperandDistribution::kGaussian);
    EXPECT_FALSE(back.eval.use_hw_cache);
    EXPECT_TRUE(back.stream_points);
    EXPECT_FALSE(back.export_json);
    EXPECT_EQ(back.deadline_ms, 1234u);
    EXPECT_EQ(back.shard_lo, 3u);
    EXPECT_EQ(back.shard_hi, 9u);
    EXPECT_TRUE(back.point_bits);
}

// ---------------------------------------------------- distributed sweeps ----

/// An in-process worker replica: SweepService + serve_listener on an
/// ephemeral TCP port (the exact serve_tool --listen-tcp code path).
struct Worker {
    serve::ServiceOptions opts;
    std::unique_ptr<serve::SweepService> service;
    std::unique_ptr<serve::TcpSocketServer> listener;
    std::thread loop;

    Worker() {
        opts.eval_threads = 2;
        service = std::make_unique<serve::SweepService>(opts);
        listener = std::make_unique<serve::TcpSocketServer>("127.0.0.1", 0);
        loop = std::thread(
            [this] { serve::serve_listener(*listener, *service, opts.max_request_bytes); });
    }

    [[nodiscard]] std::string spec() const {
        return "127.0.0.1:" + std::to_string(listener->port());
    }

    ~Worker() {
        service->request_shutdown();
        if (loop.joinable()) loop.join();
    }
};

bool points_identical(const std::vector<DesignPoint>& a, const std::vector<DesignPoint>& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
        // The wire blob covers config, error and hardware bit-exactly.
        if (design_point_bits(a[i]) != design_point_bits(b[i])) return false;
    }
    return true;
}

TEST(DistributedSweepTest, TwoWorkersReproduceLocalSweepBitExactly) {
    Worker w1;
    Worker w2;
    const SweepSpec spec;
    EvalOptions eval;
    eval.threads = 2;
    const std::vector<DesignPoint> local = evaluate_sweep(spec, eval);

    ClusterOptions cluster;
    cluster.workers = {w1.spec(), w2.spec()};
    cluster.shards = 5;
    SweepStats stats;
    serve::ClusterCounters counters;
    std::vector<size_t> streamed;
    eval.on_point = [&](size_t index, const DesignPoint&) { streamed.push_back(index); };
    const std::vector<DesignPoint> merged =
        distributed_sweep(spec, eval, cluster, &stats, &counters);

    EXPECT_TRUE(points_identical(local, merged));
    ASSERT_EQ(streamed.size(), local.size());
    for (size_t i = 0; i < streamed.size(); ++i) EXPECT_EQ(streamed[i], i);
    EXPECT_EQ(stats.points, local.size());
    uint64_t completed = 0;
    for (const serve::ClusterWorkerCounters& w : counters.workers) completed += w.completed;
    EXPECT_EQ(completed, 5u);
    EXPECT_EQ(counters.local_shards, 0u);
}

TEST(DistributedSweepTest, ShardRestrictedDistributedSweepMatchesSlice) {
    Worker w1;
    const SweepSpec spec;
    EvalOptions eval;
    eval.threads = 2;
    const std::vector<DesignPoint> full = evaluate_sweep(spec, eval);

    ClusterOptions cluster;
    cluster.workers = {w1.spec()};
    cluster.shards = 3;
    eval.shard_lo = 1;
    eval.shard_hi = full.size() - 1;
    const std::vector<DesignPoint> merged = distributed_sweep(spec, eval, cluster);
    ASSERT_EQ(merged.size(), full.size() - 2);
    for (size_t i = 0; i < merged.size(); ++i) {
        EXPECT_TRUE(merged[i].error == full[1 + i].error);
    }
}

TEST(DistributedSweepTest, DeadWorkersFallBackLocallyWithSameBytes) {
    const SweepSpec spec;
    EvalOptions eval;
    eval.threads = 2;
    const std::vector<DesignPoint> local = evaluate_sweep(spec, eval);

    ClusterOptions cluster;
    cluster.workers = {"127.0.0.1:1"};  // nothing listens there
    cluster.shards = 4;
    cluster.shard_retries = 0;
    cluster.connect_timeout_ms = 200;
    SweepStats stats;
    serve::ClusterCounters counters;
    const std::vector<DesignPoint> merged =
        distributed_sweep(spec, eval, cluster, &stats, &counters);
    EXPECT_TRUE(points_identical(local, merged));
    EXPECT_EQ(counters.local_shards, 4u);
    EXPECT_EQ(counters.workers.at(0).completed, 0u);
}

TEST(DistributedSweepTest, DeadWorkerInListRetriesOnSurvivor) {
    Worker alive;
    const SweepSpec spec;
    EvalOptions eval;
    eval.threads = 2;
    const std::vector<DesignPoint> local = evaluate_sweep(spec, eval);

    ClusterOptions cluster;
    cluster.workers = {alive.spec(), "127.0.0.1:1"};
    cluster.shards = 6;
    cluster.connect_timeout_ms = 200;
    serve::ClusterCounters counters;
    const std::vector<DesignPoint> merged =
        distributed_sweep(spec, eval, cluster, nullptr, &counters);
    EXPECT_TRUE(points_identical(local, merged));
    // Every shard completed remotely on the survivor; the dead entry may
    // have stolen claims but finished none.
    EXPECT_EQ(counters.workers.at(0).completed, 6u);
    EXPECT_EQ(counters.workers.at(1).completed, 0u);
    EXPECT_EQ(counters.local_shards, 0u);
}

TEST(DistributedSweepTest, DeterministicCacheStatsMatchSingleNode) {
    Worker w1;
    const SweepSpec spec;
    EvalOptions eval;
    eval.threads = 2;
    SweepStats local_stats;
    (void)evaluate_sweep(spec, eval, &local_stats);

    ClusterOptions cluster;
    cluster.workers = {w1.spec()};
    SweepStats cold;
    std::unordered_set<uint64_t> warm_keys;
    (void)distributed_sweep(spec, eval, cluster, &cold, nullptr, &warm_keys);
    EXPECT_EQ(cold.hw_cache_hits, local_stats.hw_cache_hits);
    EXPECT_EQ(cold.hw_cache_misses, local_stats.hw_cache_misses);
    EXPECT_TRUE(cold.hw_cache_enabled);

    // Run 2 with the tracked keys: everything warm, exactly like a repeat
    // run against a shared local cache.
    SweepStats warm;
    (void)distributed_sweep(spec, eval, cluster, &warm, nullptr, &warm_keys);
    EXPECT_EQ(warm.hw_cache_misses, 0u);
    EXPECT_EQ(warm.hw_cache_hits, cold.hw_cache_hits + cold.hw_cache_misses);
}

TEST(DistributedSweepTest, CancelAborts) {
    Worker w1;
    const SweepSpec spec;
    EvalOptions eval;
    eval.threads = 2;
    std::atomic<bool> cancel{true};  // pre-cancelled: abort before/at dispatch
    eval.cancel = &cancel;
    ClusterOptions cluster;
    cluster.workers = {w1.spec()};
    EXPECT_THROW(distributed_sweep(spec, eval, cluster), SweepCancelled);
}

TEST(DistributedSweepTest, RejectsBadConfiguration) {
    const SweepSpec spec;
    EvalOptions eval;
    ClusterOptions cluster;
    EXPECT_THROW(distributed_sweep(spec, eval, cluster), std::invalid_argument);
    cluster.workers = {"not a spec"};
    EXPECT_THROW(distributed_sweep(spec, eval, cluster), std::invalid_argument);
}

// ----------------------------------------------------- CoordinatorService ---

/// Collects every event line (submit_line is asynchronous; shutdown()
/// drains the queue before the lines are read).
class CollectingSink final : public serve::ResponseSink {
public:
    void write_line(const std::string& line) override {
        std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(line);
    }
    [[nodiscard]] std::vector<std::string> lines() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return lines_;
    }

private:
    mutable std::mutex mutex_;
    std::vector<std::string> lines_;
};

TEST(CoordinatorServiceTest, ExportMatchesPlainServiceByteForByte) {
    Worker w1;
    Worker w2;

    serve::ServiceOptions opts;
    opts.eval_threads = 2;
    ClusterOptions cluster;
    cluster.workers = {w1.spec(), w2.spec()};
    cluster.shards = 4;
    CoordinatorService coordinator(opts, cluster);

    const std::string request =
        "{\"id\": \"e\", \"spec\": {\"width\": 6}, \"export\": true}";
    const auto coord_sink = std::make_shared<CollectingSink>();
    ASSERT_TRUE(coordinator.submit_line(request, coord_sink));

    serve::SweepService plain(opts);
    const auto plain_sink = std::make_shared<CollectingSink>();
    ASSERT_TRUE(plain.submit_line(request, plain_sink));

    coordinator.shutdown();
    plain.shutdown();
    // The full event stream — accepted, every point, summary, result, done
    // — must be byte-identical: the coordinator is indistinguishable on
    // the wire from a single replica.
    EXPECT_EQ(coord_sink->lines(), plain_sink->lines());

    const serve::ServiceStats stats = coordinator.stats();
    EXPECT_TRUE(stats.cluster.enabled);
    EXPECT_EQ(stats.cluster.sweeps, 1u);
    uint64_t completed = 0;
    for (const serve::ClusterWorkerCounters& w : stats.cluster.workers) {
        completed += w.completed;
    }
    EXPECT_EQ(completed, 4u);
    EXPECT_FALSE(serve::prometheus_metrics(stats).find("cluster_enabled 1") ==
                 std::string::npos);
}

}  // namespace
}  // namespace sdlc::cluster
