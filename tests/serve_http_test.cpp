// HTTP/1.1 front door: request parsing and routing, the chunked
// POST /v1/sweep stream's byte-identity with the line transport,
// bearer-token auth, token-bucket quotas, and the transport-level status
// codes (400/401/404/405/413/429/431/505) — all through a real
// serve_http_listener() over real sockets, the code path
// `serve_tool --listen-http` runs.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/access_log.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/service.h"
#include "serve/sink.h"
#include "serve/socket.h"
#include "serve/transport.h"

namespace sdlc::serve {
namespace {

using steady_clock = std::chrono::steady_clock;

// ------------------------------------------------------------ unit layer ----

TEST(ConstantTimeEqual, MatchesOrdinaryEquality) {
    EXPECT_TRUE(constant_time_equal("", ""));
    EXPECT_TRUE(constant_time_equal("secret-token", "secret-token"));
    EXPECT_FALSE(constant_time_equal("secret-token", "secret-tokeN"));
    EXPECT_FALSE(constant_time_equal("secret", "secret-token"));
    EXPECT_FALSE(constant_time_equal("secret-token", ""));
}

TEST(TokenBucketLimiter, BurstThenRefillDeterministic) {
    // An explicit clock makes the arithmetic exact: 2 rps, burst 3.
    TokenBucketLimiter limiter(/*rps=*/2.0, /*burst=*/3.0);
    const auto t0 = steady_clock::now();
    double retry = 0.0;

    EXPECT_TRUE(limiter.admit("alice", t0, retry));
    EXPECT_TRUE(limiter.admit("alice", t0, retry));
    EXPECT_TRUE(limiter.admit("alice", t0, retry));
    EXPECT_FALSE(limiter.admit("alice", t0, retry)) << "burst of 3 is spent";
    EXPECT_NEAR(retry, 0.5, 1e-9) << "one whole token at 2 rps is 0.5 s away";

    // Another client's bucket is untouched.
    EXPECT_TRUE(limiter.admit("bob", t0, retry));
    EXPECT_EQ(limiter.size(), 2u);

    // 500 ms later exactly one token has dripped back.
    const auto t1 = t0 + std::chrono::milliseconds(500);
    EXPECT_TRUE(limiter.admit("alice", t1, retry));
    EXPECT_FALSE(limiter.admit("alice", t1, retry));

    // Refill never exceeds the burst cap.
    const auto t2 = t1 + std::chrono::hours(1);
    EXPECT_TRUE(limiter.admit("alice", t2, retry));
    EXPECT_TRUE(limiter.admit("alice", t2, retry));
    EXPECT_TRUE(limiter.admit("alice", t2, retry));
    EXPECT_FALSE(limiter.admit("alice", t2, retry));
}

TEST(TokenBucketLimiter, BucketTableIsBounded) {
    TokenBucketLimiter limiter(/*rps=*/1.0, /*burst=*/1.0);
    auto now = steady_clock::now();
    double retry = 0.0;
    // A key-rotating flood cannot grow the table past the bound.
    for (size_t i = 0; i < TokenBucketLimiter::kMaxBuckets + 100; ++i) {
        now += std::chrono::milliseconds(1);  // distinct refresh times
        EXPECT_TRUE(limiter.admit("key" + std::to_string(i), now, retry));
    }
    EXPECT_LE(limiter.size(), TokenBucketLimiter::kMaxBuckets);
}

TEST(ReadAuthTokenFile, TrimsAndRejectsEmpty) {
    const std::string path = testing::TempDir() + "/sdlc_http_token";
    {
        std::ofstream out(path);
        out << "  s3cret-token \n";
    }
    std::string token;
    std::string error;
    ASSERT_TRUE(read_auth_token_file(path, token, &error)) << error;
    EXPECT_EQ(token, "s3cret-token") << "the newline must not join the token";

    {
        std::ofstream out(path);
        out << "\n";
    }
    EXPECT_FALSE(read_auth_token_file(path, token, &error));
    EXPECT_NE(error.find("empty token"), std::string::npos) << error;

    EXPECT_FALSE(read_auth_token_file(path + ".missing", token, &error));
    ::unlink(path.c_str());
}

// --------------------------------------------------------- served fixture ----

/// A served HTTP endpoint: SweepService + serve_http_listener on a
/// background thread. Torn down via request_shutdown(), which fires the
/// installed hook and unblocks the accept loop.
struct HttpFixture {
    ServiceOptions opts;
    std::unique_ptr<SweepService> service;
    std::unique_ptr<TcpSocketServer> listener;
    HttpOptions http;
    std::thread loop;

    explicit HttpFixture(HttpOptions h = {}, ServiceOptions o = {}) : opts(o), http(h) {
        service = std::make_unique<SweepService>(opts);
        listener = std::make_unique<TcpSocketServer>("127.0.0.1", 0);
        if (!http.metrics_fn) {
            http.metrics_fn = [this] { return prometheus_metrics(service->stats()); };
        }
        loop = std::thread([this] { serve_http_listener(*listener, *service, http); });
    }

    ~HttpFixture() {
        if (!service->shutdown_requested()) service->request_shutdown();
        if (loop.joinable()) loop.join();
    }

    [[nodiscard]] uint16_t port() const { return listener->port(); }
};

/// Writes `request` raw and reads the connection to EOF (requests here
/// either say Connection: close or provoke a server-side close).
std::string raw_exchange(uint16_t port, const std::string& request) {
    const int fd = tcp_connect("127.0.0.1", port);
    EXPECT_GE(fd, 0);
    EXPECT_TRUE(write_all(fd, request));
    std::string out;
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof chunk)) > 0) out.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    return out;
}

std::string tiny_sweep_line(const std::string& id) {
    return "{\"id\": \"" + id +
           "\", \"spec\": {\"width\": 4, \"variants\": [\"sdlc\"], \"schemes\": [\"ripple\"]}}";
}

/// The same sweep's event lines from an in-process service against a cold
/// cache — the reference the HTTP body must reproduce byte for byte.
std::vector<std::string> reference_lines(const std::string& request_line) {
    SweepService reference;
    auto sink = std::make_shared<BufferSink>();
    EXPECT_TRUE(reference.submit_line(request_line, sink));
    std::vector<std::string> lines;
    for (int spin = 0; spin < 6000; ++spin) {
        lines = sink->lines();
        if (!lines.empty() &&
            lines.back().find("\"event\": \"done\"") != std::string::npos) {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_FALSE(lines.empty());
    return lines;
}

// ------------------------------------------------------------ happy paths ----

TEST(ServeHttp, SweepBodyIsByteIdenticalToLineTransport) {
    const std::string request_line = tiny_sweep_line("t");
    std::string expected;
    for (const std::string& line : reference_lines(request_line)) {
        expected += line;
        expected += '\n';
    }

    HttpFixture fx;
    HttpClientResponse response;
    std::string error;
    ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "POST", "/v1/sweep",
                             request_line + "\n", "", response, &error))
        << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.headers["content-type"], "application/x-ndjson");
    EXPECT_EQ(response.headers["transfer-encoding"], "chunked");
    // The invariant of the whole front door: HTTP is framing, never
    // content. The decoded chunk payloads are the line-transport bytes.
    EXPECT_EQ(response.body, expected);
}

TEST(ServeHttp, MultiRequestBodyStreamsEveryDoneEvent) {
    HttpFixture fx;
    HttpClientResponse response;
    std::string error;
    ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "POST", "/v1/sweep",
                             tiny_sweep_line("a") + "\n" + tiny_sweep_line("b") + "\n", "",
                             response, &error))
        << error;
    EXPECT_EQ(response.status, 200);
    size_t done = 0;
    size_t at = 0;
    while ((at = response.body.find("\"event\": \"done\"", at)) != std::string::npos) {
        ++done;
        ++at;
    }
    EXPECT_EQ(done, 2u) << "one terminal event per request line";
}

TEST(ServeHttp, HealthzAndMetricsAnswer) {
    HttpFixture fx;
    HttpClientResponse response;
    std::string error;
    ASSERT_TRUE(
        http_request("127.0.0.1", fx.port(), "GET", "/healthz", "", "", response, &error))
        << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_EQ(response.body, "ok\n");

    ASSERT_TRUE(
        http_request("127.0.0.1", fx.port(), "GET", "/metrics", "", "", response, &error))
        << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.headers["content-type"].find("version=0.0.4"), std::string::npos);
    std::string exposition_error;
    EXPECT_TRUE(validate_exposition(response.body, &exposition_error)) << exposition_error;
}

TEST(ServeHttp, KeepAliveServesSequentialRequests) {
    HttpFixture fx;
    const int fd = tcp_connect("127.0.0.1", fx.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(write_all(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
    // Second request on the same connection, then close.
    ASSERT_TRUE(
        write_all(fd, "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"));
    std::string out;
    char chunk[4096];
    ssize_t n;
    while ((n = ::read(fd, chunk, sizeof chunk)) > 0) out.append(chunk, static_cast<size_t>(n));
    ::close(fd);
    size_t responses = 0;
    size_t at = 0;
    while ((at = out.find("HTTP/1.1 200 OK", at)) != std::string::npos) {
        ++responses;
        ++at;
    }
    EXPECT_EQ(responses, 2u) << out;
}

TEST(ServeHttp, ShutdownRequestInSweepBodyDrainsTheServer) {
    HttpFixture fx;
    HttpClientResponse response;
    std::string error;
    ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "POST", "/v1/sweep",
                             tiny_sweep_line("last") + "\n{\"id\": \"q\", \"type\": "
                                                       "\"shutdown\"}\n",
                             "", response, &error))
        << error;
    EXPECT_EQ(response.status, 200);
    EXPECT_NE(response.body.find("\"id\": \"last\""), std::string::npos);
    fx.loop.join();  // the listener loop must terminate on its own
    EXPECT_TRUE(fx.service->shutdown_requested());
}

// --------------------------------------------------------------- negatives ----

TEST(ServeHttp, TransportLevelRejections) {
    HttpOptions options;
    options.max_header_bytes = 512;
    options.max_body_bytes = 1024;
    HttpFixture fx(options);

    // Unknown path.
    std::string out = raw_exchange(
        fx.port(), "GET /nope HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 404"), std::string::npos) << out;

    // Wrong method on a known path, with the Allow header.
    out = raw_exchange(fx.port(),
                       "GET /v1/sweep HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 405"), std::string::npos) << out;
    EXPECT_NE(out.find("Allow: POST"), std::string::npos) << out;

    // Malformed request line.
    out = raw_exchange(fx.port(), "NONSENSE\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 400"), std::string::npos) << out;

    // Unsupported HTTP version.
    out = raw_exchange(fx.port(), "GET /healthz HTTP/2.0\r\nHost: x\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 505"), std::string::npos) << out;

    // Oversized head: stream headers past the cap.
    out = raw_exchange(fx.port(), "GET /healthz HTTP/1.1\r\nX-Pad: " +
                                      std::string(2048, 'x') + "\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 431"), std::string::npos) << out;

    // Declared body beyond the cap is refused before it is read.
    out = raw_exchange(fx.port(),
                       "POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 9999\r\n"
                       "Connection: close\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 413"), std::string::npos) << out;

    // Chunked request bodies are not implemented — refused, not guessed.
    out = raw_exchange(fx.port(),
                       "POST /v1/sweep HTTP/1.1\r\nHost: x\r\n"
                       "Transfer-Encoding: chunked\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 501"), std::string::npos) << out;

    // An empty sweep body is a client error, not a hung stream.
    out = raw_exchange(fx.port(),
                       "POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n"
                       "Connection: close\r\n\r\n");
    EXPECT_NE(out.find("HTTP/1.1 400"), std::string::npos) << out;
}

TEST(ServeHttp, BearerAuthGatesSweepAndMetricsButNotHealthz) {
    HttpOptions options;
    options.auth_token = "open-sesame";
    HttpFixture fx(options);

    HttpClientResponse response;
    std::string error;
    // No token: 401 with the challenge header.
    ASSERT_TRUE(
        http_request("127.0.0.1", fx.port(), "GET", "/metrics", "", "", response, &error))
        << error;
    EXPECT_EQ(response.status, 401);
    EXPECT_EQ(response.headers["www-authenticate"], "Bearer");

    // Wrong token: still 401.
    ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "POST", "/v1/sweep",
                             tiny_sweep_line("x") + "\n", "open-sesamE", response, &error))
        << error;
    EXPECT_EQ(response.status, 401);

    // Right token: served.
    ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "GET", "/metrics", "", "open-sesame",
                             response, &error))
        << error;
    EXPECT_EQ(response.status, 200);

    // Liveness stays open — probes must work mid-incident.
    ASSERT_TRUE(
        http_request("127.0.0.1", fx.port(), "GET", "/healthz", "", "", response, &error))
        << error;
    EXPECT_EQ(response.status, 200);
}

TEST(ServeHttp, QuotaShedsWith429AndRetryAfterWithoutDisturbingServedSweeps) {
    HttpOptions options;
    options.quota_rps = 0.001;  // refill is ~forever at test timescale
    options.quota_burst = 1.0;
    HttpFixture fx(options);

    const std::string expected_id = "\"id\": \"q1\"";
    HttpClientResponse first;
    std::string error;
    ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "POST", "/v1/sweep",
                             tiny_sweep_line("q1") + "\n", "", first, &error))
        << error;
    EXPECT_EQ(first.status, 200);
    EXPECT_NE(first.body.find(expected_id), std::string::npos);
    EXPECT_NE(first.body.find("\"ok\": true"), std::string::npos)
        << "the admitted sweep must stream to completion";

    // The bucket is spent: the next sweep is shed before touching the
    // service queue, with a Retry-After hint.
    HttpClientResponse second;
    ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "POST", "/v1/sweep",
                             tiny_sweep_line("q2") + "\n", "", second, &error))
        << error;
    EXPECT_EQ(second.status, 429);
    EXPECT_FALSE(second.headers["retry-after"].empty());
    EXPECT_EQ(second.body.find("\"event\""), std::string::npos)
        << "a shed request must not produce protocol events";

    // Quota never gates observability.
    HttpClientResponse metrics;
    ASSERT_TRUE(
        http_request("127.0.0.1", fx.port(), "GET", "/metrics", "", "", metrics, &error))
        << error;
    EXPECT_EQ(metrics.status, 200);
}

TEST(ServeHttp, AccessLogRecordsStatusAndOutcome) {
    const std::string path = testing::TempDir() + "/sdlc_http_access_log.jsonl";
    ::unlink(path.c_str());
    {
        HttpOptions options;
        options.auth_token = "tok";
        std::string error;
        options.access_log = obs::AccessLog::open(path, &error);
        ASSERT_NE(options.access_log, nullptr) << error;
        HttpFixture fx(options);

        HttpClientResponse response;
        ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "GET", "/metrics", "", "",
                                 response, &error))
            << error;
        EXPECT_EQ(response.status, 401);
        ASSERT_TRUE(http_request("127.0.0.1", fx.port(), "GET", "/healthz", "", "",
                                 response, &error))
            << error;
    }
    std::ifstream in(path);
    std::string all((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("\"outcome\": \"unauthorized\""), std::string::npos) << all;
    EXPECT_NE(all.find("\"status\": 401"), std::string::npos) << all;
    EXPECT_NE(all.find("\"path\": \"/healthz\""), std::string::npos) << all;
    ::unlink(path.c_str());
}

}  // namespace
}  // namespace sdlc::serve
