// Unit tests for the netlist IR and the 64-lane simulator.
#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "netlist/sim.h"

namespace sdlc {
namespace {

TEST(Netlist, ConstantsAreDeduplicated) {
    Netlist nl;
    EXPECT_EQ(nl.constant(false), nl.constant(false));
    EXPECT_EQ(nl.constant(true), nl.constant(true));
    EXPECT_NE(nl.constant(false), nl.constant(true));
    EXPECT_EQ(nl.net_count(), 2u);
}

TEST(Netlist, InputsKeepOrderAndNames) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    ASSERT_EQ(nl.inputs().size(), 2u);
    EXPECT_EQ(nl.inputs()[0], a);
    EXPECT_EQ(nl.inputs()[1], b);
    EXPECT_EQ(nl.input_name(0), "a");
    EXPECT_EQ(nl.input_name(1), "b");
}

TEST(Netlist, RejectsForwardReferences) {
    Netlist nl;
    const NetId a = nl.input("a");
    EXPECT_THROW(nl.and_gate(a, a + 10), std::invalid_argument);
}

TEST(Netlist, RejectsBinaryFaninOnUnaryGate) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    EXPECT_THROW(nl.add_gate(GateKind::kNot, a, b), std::invalid_argument);
}

TEST(Netlist, RejectsSourceKindsViaAddGate) {
    Netlist nl;
    const NetId a = nl.input("a");
    EXPECT_THROW(nl.add_gate(GateKind::kInput, a), std::invalid_argument);
    EXPECT_THROW(nl.add_gate(GateKind::kConst1, a), std::invalid_argument);
}

TEST(Netlist, GateArityTable) {
    EXPECT_EQ(gate_arity(GateKind::kInput), 0);
    EXPECT_EQ(gate_arity(GateKind::kNot), 1);
    EXPECT_EQ(gate_arity(GateKind::kBuf), 1);
    EXPECT_EQ(gate_arity(GateKind::kAnd), 2);
    EXPECT_EQ(gate_arity(GateKind::kXnor), 2);
}

TEST(Netlist, LogicGateCountExcludesSources) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.constant(true);
    const NetId x = nl.and_gate(a, b);
    nl.or_gate(x, a);
    EXPECT_EQ(nl.logic_gate_count(), 2u);
    EXPECT_EQ(nl.net_count(), 5u);
}

TEST(Netlist, KindHistogram) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.and_gate(a, b);
    nl.and_gate(b, a);
    nl.xor_gate(a, b);
    const auto h = nl.kind_histogram();
    EXPECT_EQ(h[static_cast<size_t>(GateKind::kAnd)], 2u);
    EXPECT_EQ(h[static_cast<size_t>(GateKind::kXor)], 1u);
    EXPECT_EQ(h[static_cast<size_t>(GateKind::kInput)], 2u);
}

TEST(Netlist, FanoutCounts) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId x = nl.and_gate(a, b);
    nl.or_gate(x, a);
    nl.not_gate(x);
    const auto fo = nl.fanout_counts();
    EXPECT_EQ(fo[a], 2u);  // AND + OR
    EXPECT_EQ(fo[b], 1u);
    EXPECT_EQ(fo[x], 2u);  // OR + NOT
}

TEST(Netlist, LiveMaskTracksOutputCone) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId live = nl.and_gate(a, b);
    const NetId dead = nl.or_gate(a, b);
    nl.mark_output(live, "y");
    const auto mask = nl.live_mask();
    EXPECT_TRUE(mask[live]);
    EXPECT_TRUE(mask[a]);
    EXPECT_TRUE(mask[b]);
    EXPECT_FALSE(mask[dead]);
}

TEST(Netlist, OrTreeOfNothingIsConstFalse) {
    Netlist nl;
    const NetId z = nl.or_tree({});
    EXPECT_EQ(nl.gate(z).kind, GateKind::kConst0);
}

TEST(Netlist, OrTreeSingleIsPassthrough) {
    Netlist nl;
    const NetId a = nl.input("a");
    EXPECT_EQ(nl.or_tree({a}), a);
}

// --- Simulator ------------------------------------------------------------

/// Evaluates every 2-input gate kind against its truth table in 4 lanes.
TEST(Simulator, TruthTablesAllKinds) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId g_and = nl.and_gate(a, b);
    const NetId g_or = nl.or_gate(a, b);
    const NetId g_nand = nl.nand_gate(a, b);
    const NetId g_nor = nl.nor_gate(a, b);
    const NetId g_xor = nl.xor_gate(a, b);
    const NetId g_xnor = nl.xnor_gate(a, b);
    const NetId g_not = nl.not_gate(a);
    const NetId g_buf = nl.buf_gate(a);

    // Lanes 0..3 carry (a,b) = (0,0),(1,0),(0,1),(1,1).
    Simulator sim(nl);
    const std::vector<Simulator::Word> in = {0b1010, 0b1100};
    sim.run(in);
    EXPECT_EQ(sim.value(g_and) & 0xf, 0b1000u);
    EXPECT_EQ(sim.value(g_or) & 0xf, 0b1110u);
    EXPECT_EQ(sim.value(g_nand) & 0xf, 0b0111u);
    EXPECT_EQ(sim.value(g_nor) & 0xf, 0b0001u);
    EXPECT_EQ(sim.value(g_xor) & 0xf, 0b0110u);
    EXPECT_EQ(sim.value(g_xnor) & 0xf, 0b1001u);
    EXPECT_EQ(sim.value(g_not) & 0xf, 0b0101u);
    EXPECT_EQ(sim.value(g_buf) & 0xf, 0b1010u);
}

TEST(Simulator, ConstantsEvaluate) {
    Netlist nl;
    const NetId c0 = nl.constant(false);
    const NetId c1 = nl.constant(true);
    nl.input("a");
    Simulator sim(nl);
    const std::vector<Simulator::Word> in = {0x55};
    sim.run(in);
    EXPECT_EQ(sim.value(c0), 0u);
    EXPECT_EQ(sim.value(c1), ~uint64_t{0});
}

TEST(Simulator, RejectsWrongInputCount) {
    Netlist nl;
    nl.input("a");
    nl.input("b");
    Simulator sim(nl);
    const std::vector<Simulator::Word> one = {0};
    EXPECT_THROW(sim.run(one), std::invalid_argument);
}

TEST(Simulator, OutputWordsFollowDeclarationOrder) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.and_gate(a, b), "y0");
    nl.mark_output(nl.or_gate(a, b), "y1");
    Simulator sim(nl);
    const std::vector<Simulator::Word> in = {0b10, 0b11};
    sim.run(in);
    const auto out = sim.output_words();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0] & 3u, 0b10u);
    EXPECT_EQ(out[1] & 3u, 0b11u);
}

TEST(Simulator, ToggleCountingAccumulates) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.not_gate(a), "y");
    Simulator sim(nl);
    const std::vector<Simulator::Word> v0 = {0};
    const std::vector<Simulator::Word> v1 = {~uint64_t{0}};
    sim.run_counting_toggles(v0);  // NOT output: all ones vs initial zeros -> 64 toggles
    sim.run_counting_toggles(v1);  // flips all lanes again
    EXPECT_EQ(sim.toggled_lanes(), 128u);
    EXPECT_GE(sim.toggle_counts()[nl.outputs()[0].net], 64u);
    sim.reset_toggles();
    EXPECT_EQ(sim.toggled_lanes(), 0u);
}

TEST(Simulator, EvalSingleMatchesLanes) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.xor_gate(a, b), "y");
    EXPECT_EQ(eval_single(nl, {true, false})[0], true);
    EXPECT_EQ(eval_single(nl, {true, true})[0], false);
    EXPECT_THROW(eval_single(nl, {true}), std::invalid_argument);
}

}  // namespace
}  // namespace sdlc
