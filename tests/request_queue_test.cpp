// Tests for the serve subsystem's bounded MPMC request queue, in
// particular the drain-then-stop close() contract the service's clean
// shutdown depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "serve/request_queue.h"

namespace sdlc::serve {
namespace {

TEST(BoundedQueue, FifoOrder) {
    BoundedQueue<int> q(8);
    for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop(), i);
    EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
    BoundedQueue<int> q(0);
    EXPECT_EQ(q.capacity(), 1u);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_FALSE(q.try_push(2)) << "full queue must refuse try_push";
}

TEST(BoundedQueue, PushBlocksUntilPopMakesRoom) {
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::atomic<bool> second_pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(2));  // blocks until the consumer pops
        second_pushed.store(true);
    });
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    producer.join();
    EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedQueue, CloseDrainsThenStops) {
    BoundedQueue<int> q(8);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    q.close();
    EXPECT_FALSE(q.push(3)) << "closed queue must refuse intake";
    EXPECT_EQ(q.pop(), 1) << "queued items survive close()";
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), std::nullopt) << "drained + closed means end of stream";
}

TEST(BoundedQueue, CloseUnblocksWaitingConsumers) {
    BoundedQueue<int> q(4);
    std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
    q.close();
    consumer.join();
}

TEST(BoundedQueue, CloseUnblocksWaitingProducers) {
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.push(1));
    std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
    q.close();
    producer.join();
}

TEST(BoundedQueue, MpmcStressDeliversEveryItemOnce) {
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr int kPerProducer = 500;
    BoundedQueue<int> q(16);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&q, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(q.push(p * kPerProducer + i));
            }
        });
    }
    std::mutex seen_mutex;
    std::set<int> seen;
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (std::optional<int> item = q.pop()) {
                std::lock_guard<std::mutex> lock(seen_mutex);
                EXPECT_TRUE(seen.insert(*item).second) << "duplicate delivery of " << *item;
            }
        });
    }
    for (std::thread& t : producers) t.join();
    q.close();
    for (std::thread& t : consumers) t.join();
    EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace sdlc::serve
