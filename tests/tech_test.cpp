// Tests for the technology library, STA and power/synthesis models.
#include <gtest/gtest.h>

#include "arith/adders.h"
#include "netlist/netlist.h"
#include "tech/cell_library.h"
#include "tech/power.h"
#include "tech/sta.h"
#include "tech/synthesis.h"

namespace sdlc {
namespace {

TEST(CellLibrary, Generic90nmIsPopulated) {
    const CellLibrary lib = CellLibrary::generic_90nm();
    EXPECT_EQ(lib.name(), "generic-90nm");
    for (GateKind k : {GateKind::kNot, GateKind::kAnd, GateKind::kOr, GateKind::kNand,
                       GateKind::kNor, GateKind::kXor, GateKind::kXnor, GateKind::kBuf}) {
        EXPECT_GT(lib.cell(k).area_um2, 0.0) << gate_kind_name(k);
        EXPECT_GT(lib.cell(k).intrinsic_delay_ps, 0.0) << gate_kind_name(k);
        EXPECT_GT(lib.cell(k).energy_fj, 0.0) << gate_kind_name(k);
        EXPECT_GT(lib.cell(k).leakage_nw, 0.0) << gate_kind_name(k);
    }
    // Sources are free.
    EXPECT_EQ(lib.cell(GateKind::kInput).area_um2, 0.0);
    EXPECT_EQ(lib.cell(GateKind::kConst0).area_um2, 0.0);
}

TEST(CellLibrary, RelativeOrderingIsSane) {
    const CellLibrary lib = CellLibrary::generic_90nm();
    // NAND cheaper than AND; XOR the most expensive 2-input cell.
    EXPECT_LT(lib.cell(GateKind::kNand).area_um2, lib.cell(GateKind::kAnd).area_um2);
    EXPECT_GT(lib.cell(GateKind::kXor).area_um2, lib.cell(GateKind::kOr).area_um2);
    EXPECT_GT(lib.cell(GateKind::kXor).intrinsic_delay_ps,
              lib.cell(GateKind::kNand).intrinsic_delay_ps);
}

TEST(CellLibrary, ScalingAppliesFactors) {
    const CellLibrary lib = CellLibrary::generic_90nm();
    const CellLibrary half = lib.scaled(0.5, 0.7, 0.6);
    EXPECT_DOUBLE_EQ(half.cell(GateKind::kAnd).area_um2,
                     0.5 * lib.cell(GateKind::kAnd).area_um2);
    EXPECT_DOUBLE_EQ(half.cell(GateKind::kAnd).intrinsic_delay_ps,
                     0.7 * lib.cell(GateKind::kAnd).intrinsic_delay_ps);
    EXPECT_DOUBLE_EQ(half.cell(GateKind::kAnd).energy_fj,
                     0.6 * lib.cell(GateKind::kAnd).energy_fj);
}

TEST(Sta, ChainDelayAddsUp) {
    Netlist nl;
    const CellLibrary lib = CellLibrary::generic_90nm();
    NetId x = nl.input("a");
    for (int i = 0; i < 5; ++i) x = nl.not_gate(x);
    nl.mark_output(x, "y");
    const TimingReport t = analyze_timing(nl, lib);
    const CellParams& inv = lib.cell(GateKind::kNot);
    // Each NOT has exactly one sink except the last (an output, fanout 0).
    const double expected = 4 * (inv.intrinsic_delay_ps + inv.load_delay_ps) +
                            (inv.intrinsic_delay_ps);
    EXPECT_NEAR(t.critical_path_ps, expected, 1e-9);
    EXPECT_EQ(logic_depth(nl), 5);
}

TEST(Sta, PicksLongestPath) {
    Netlist nl;
    const CellLibrary lib = CellLibrary::generic_90nm();
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId quick = nl.and_gate(a, b);
    NetId slow = nl.xor_gate(a, b);
    slow = nl.xor_gate(slow, quick);
    nl.mark_output(quick, "fast");
    nl.mark_output(slow, "slow");
    const TimingReport t = analyze_timing(nl, lib);
    EXPECT_EQ(t.critical_output, slow);
    EXPECT_GE(t.critical_path.size(), 3u);  // input -> xor -> xor
    // Arrival times are monotone along the reported path.
    for (size_t i = 1; i < t.critical_path.size(); ++i) {
        EXPECT_LE(t.arrival_ps[t.critical_path[i - 1]],
                  t.arrival_ps[t.critical_path[i]]);
    }
}

TEST(Sta, EmptyNetlistHasZeroDelay) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(a, "y");
    const TimingReport t = analyze_timing(nl, CellLibrary::generic_90nm());
    EXPECT_DOUBLE_EQ(t.critical_path_ps, 0.0);
    EXPECT_EQ(logic_depth(nl), 0);
}

TEST(Power, LeakageIsSumOfCells) {
    Netlist nl;
    const CellLibrary lib = CellLibrary::generic_90nm();
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.and_gate(a, b), "y");
    PowerOptions opts;
    opts.passes = 4;
    const PowerReport p = estimate_power(nl, lib, opts);
    EXPECT_DOUBLE_EQ(p.leakage_nw, lib.cell(GateKind::kAnd).leakage_nw);
}

TEST(Power, ActivityScalesWithLogicSize) {
    const CellLibrary lib = CellLibrary::generic_90nm();
    auto chain = [&](int len) {
        Netlist nl;
        const NetId a = nl.input("a");
        const NetId b = nl.input("b");
        NetId x = nl.xor_gate(a, b);
        for (int i = 1; i < len; ++i) x = nl.xor_gate(x, i % 2 ? a : b);
        nl.mark_output(x, "y");
        PowerOptions opts;
        opts.passes = 16;
        return estimate_power(nl, lib, opts).dynamic_energy_fj;
    };
    EXPECT_GT(chain(16), chain(4));
}

TEST(Power, DeterministicForSeed) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.xor_gate(nl.and_gate(a, b), b), "y");
    const CellLibrary lib = CellLibrary::generic_90nm();
    const PowerReport p1 = estimate_power(nl, lib);
    const PowerReport p2 = estimate_power(nl, lib);
    EXPECT_DOUBLE_EQ(p1.dynamic_energy_fj, p2.dynamic_energy_fj);
}

TEST(Power, XorChainTogglesMoreThanAndChain) {
    // An XOR reduction over independent inputs stays uniform-random at every
    // stage (toggle probability 1/2); an AND reduction collapses towards
    // constant 0, so its internal nets barely switch.
    const CellLibrary lib = CellLibrary::generic_90nm();
    auto build = [&](bool use_xor) {
        Netlist nl;
        std::vector<NetId> in;
        for (int i = 0; i < 12; ++i) in.push_back(nl.input("i" + std::to_string(i)));
        NetId x = in[0];
        for (int i = 1; i < 12; ++i) {
            x = use_xor ? nl.xor_gate(x, in[i]) : nl.and_gate(x, in[i]);
        }
        nl.mark_output(x, "y");
        PowerOptions opts;
        opts.passes = 32;
        return estimate_power(nl, lib, opts).mean_toggle_rate;
    };
    EXPECT_GT(build(true), 2.0 * build(false));
}

TEST(Synthesis, ReportsAllMetrics) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const std::vector<NetId> va = {a, nl.input("a1")};
    const std::vector<NetId> vb = {b, nl.input("b1")};
    const auto sum = ripple_add(nl, va, vb);
    for (size_t i = 0; i < sum.size(); ++i) nl.mark_output(sum[i], "s" + std::to_string(i));
    const SynthesisReport r = synthesize(nl, CellLibrary::generic_90nm());
    EXPECT_GT(r.cells, 0u);
    EXPECT_GT(r.area_um2, 0.0);
    EXPECT_GT(r.delay_ps, 0.0);
    EXPECT_GT(r.dynamic_energy_fj, 0.0);
    EXPECT_GT(r.leakage_nw, 0.0);
    EXPECT_GT(r.energy_fj, r.dynamic_energy_fj);  // leakage term adds on top
    EXPECT_GT(r.depth, 0);
    EXPECT_FALSE(summarize(r).empty());
}

TEST(Synthesis, OptimizerReducesRedundantDesigns) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    // Four identical ANDs or-ed together: collapses to a single AND.
    const NetId o =
        nl.or_gate(nl.or_gate(nl.and_gate(a, b), nl.and_gate(a, b)),
                   nl.or_gate(nl.and_gate(b, a), nl.and_gate(a, b)));
    nl.mark_output(o, "y");
    SynthesisOptions with, without;
    without.optimize = false;
    const SynthesisReport r_with = synthesize(nl, CellLibrary::generic_90nm(), with);
    const SynthesisReport r_without = synthesize(nl, CellLibrary::generic_90nm(), without);
    EXPECT_LT(r_with.cells, r_without.cells);
    EXPECT_EQ(r_with.cells, 1u);
}

TEST(Synthesis, ReductionHelper) {
    EXPECT_DOUBLE_EQ(SynthesisReport::reduction(10.0, 4.0), 0.6);
    EXPECT_DOUBLE_EQ(SynthesisReport::reduction(0.0, 4.0), 0.0);
}

}  // namespace
}  // namespace sdlc
