// Tests for the Verilog/DOT exporters.
#include <gtest/gtest.h>

#include <sstream>

#include "netlist/export.h"
#include "netlist/netlist.h"

namespace sdlc {
namespace {

Netlist small_design() {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.and_gate(a, b), "y_and");
    nl.mark_output(nl.xor_gate(a, b), "y_xor");
    return nl;
}

TEST(Verilog, ContainsModuleAndPorts) {
    const std::string v = to_verilog(small_design(), "tiny");
    EXPECT_NE(v.find("module tiny ("), std::string::npos);
    EXPECT_NE(v.find("input wire a"), std::string::npos);
    EXPECT_NE(v.find("input wire b"), std::string::npos);
    EXPECT_NE(v.find("output wire y_and"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(Verilog, EmitsGateExpressions) {
    const std::string v = to_verilog(small_design(), "tiny");
    EXPECT_NE(v.find(" & "), std::string::npos);
    EXPECT_NE(v.find(" ^ "), std::string::npos);
}

TEST(Verilog, EmitsConstants) {
    Netlist nl;
    nl.input("a");
    nl.mark_output(nl.constant(true), "one");
    nl.mark_output(nl.constant(false), "zero");
    const std::string v = to_verilog(nl, "consts");
    EXPECT_NE(v.find("1'b1"), std::string::npos);
    EXPECT_NE(v.find("1'b0"), std::string::npos);
}

TEST(Verilog, SanitizesIdentifiers) {
    Netlist nl;
    const NetId a = nl.input("a[0]");  // brackets are not valid in our subset
    nl.mark_output(nl.not_gate(a), "out-1");
    const std::string v = to_verilog(nl, "8bad name");
    EXPECT_EQ(v.find("a[0]"), std::string::npos);
    EXPECT_NE(v.find("a_0_"), std::string::npos);
    EXPECT_NE(v.find("out_1"), std::string::npos);
    EXPECT_NE(v.find("module n8bad_name"), std::string::npos);
}

TEST(Verilog, EveryKindRenders) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.buf_gate(a), "o_buf");
    nl.mark_output(nl.not_gate(a), "o_not");
    nl.mark_output(nl.nand_gate(a, b), "o_nand");
    nl.mark_output(nl.nor_gate(a, b), "o_nor");
    nl.mark_output(nl.xnor_gate(a, b), "o_xnor");
    const std::string v = to_verilog(nl, "kinds");
    EXPECT_NE(v.find("~(") , std::string::npos);
    EXPECT_NE(v.find("assign o_buf"), std::string::npos);
}

TEST(Dot, ContainsNodesAndEdges) {
    std::ostringstream oss;
    write_dot(oss, small_design(), "tiny");
    const std::string d = oss.str();
    EXPECT_NE(d.find("digraph tiny {"), std::string::npos);
    EXPECT_NE(d.find("->"), std::string::npos);
    EXPECT_NE(d.find("AND2"), std::string::npos);
    EXPECT_NE(d.find("y_xor"), std::string::npos);
}

}  // namespace
}  // namespace sdlc
