// Tests for the baseline multipliers: accurate behaviour of the functional
// models, netlist/model cross-validation, and reproduction of the paper's
// Table IV error numbers for Kulkarni and ETM.
#include <gtest/gtest.h>

#include "baselines/accurate.h"
#include "baselines/etm.h"
#include "baselines/kulkarni.h"
#include "baselines/truncated.h"
#include "error/evaluate.h"
#include "util/rng.h"

namespace sdlc {
namespace {

// --- Kulkarni ---------------------------------------------------------------

TEST(Kulkarni, TwoBitBlockTruthTable) {
    for (uint64_t a = 0; a < 4; ++a) {
        for (uint64_t b = 0; b < 4; ++b) {
            const uint64_t expect = (a == 3 && b == 3) ? 7 : a * b;
            EXPECT_EQ(kulkarni_multiply(2, a, b), expect) << a << "*" << b;
        }
    }
}

TEST(Kulkarni, ErrorIsAlwaysUnderestimate) {
    for (uint64_t a = 0; a < 256; ++a) {
        for (uint64_t b = 0; b < 256; ++b) {
            EXPECT_LE(kulkarni_multiply(8, a, b), a * b);
        }
    }
}

TEST(Kulkarni, Table4GoldenNumbers8Bit) {
    // Paper Table IV: MRED 3.25 %, NMED 1.39 %, ER 46.73 %.
    const ErrorMetrics m = exhaustive_metrics(
        8, [](uint64_t a, uint64_t b) { return kulkarni_multiply(8, a, b); });
    EXPECT_NEAR(m.mred * 100.0, 3.25, 0.01);
    EXPECT_NEAR(m.nmed * 100.0, 1.39, 0.005);
    EXPECT_NEAR(m.error_rate * 100.0, 46.73, 0.005);
}

TEST(Kulkarni, RejectsNonPowerOfTwoWidths) {
    EXPECT_THROW((void)kulkarni_multiply(6, 1, 1), std::invalid_argument);
    EXPECT_THROW((void)build_kulkarni_multiplier(12), std::invalid_argument);
}

class KulkarniNetlist : public testing::TestWithParam<int> {};

TEST_P(KulkarniNetlist, MatchesFunctionalModel) {
    const int width = GetParam();
    const MultiplierNetlist m = build_kulkarni_multiplier(width);
    if (width <= 4) {
        const uint64_t side = uint64_t{1} << width;
        for (uint64_t a = 0; a < side; ++a) {
            for (uint64_t b = 0; b < side; ++b) {
                ASSERT_EQ(simulate_one(m, a, b), kulkarni_multiply(width, a, b))
                    << a << "*" << b;
            }
        }
    } else {
        Xoshiro256 rng(width);
        const uint64_t mask = (uint64_t{1} << width) - 1;
        std::vector<uint64_t> as(64), bs(64);
        for (int pass = 0; pass < 8; ++pass) {
            for (int i = 0; i < 64; ++i) {
                as[i] = rng.next() & mask;
                bs[i] = rng.next() & mask;
            }
            const auto prods = simulate_batch(m, as, bs);
            for (int i = 0; i < 64; ++i) {
                ASSERT_EQ(prods[i], kulkarni_multiply(width, as[i], bs[i]));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, KulkarniNetlist, testing::Values(2, 4, 8, 16),
                         [](const auto& pinfo) { return "w" + std::to_string(pinfo.param); });

// --- ETM --------------------------------------------------------------------

TEST(Etm, ExactWhenHighHalvesZero) {
    for (uint64_t a = 0; a < 16; ++a) {
        for (uint64_t b = 0; b < 16; ++b) {
            EXPECT_EQ(etm_multiply(8, a, b), a * b);
        }
    }
}

TEST(Etm, HighHalvesMultipliedExactly) {
    // With zero low halves the result is exactly (ah*bh) << 8.
    for (uint64_t ah = 1; ah < 16; ++ah) {
        for (uint64_t bh = 1; bh < 16; ++bh) {
            EXPECT_EQ(etm_multiply(8, ah << 4, bh << 4), (ah * bh) << 8);
        }
    }
}

TEST(Etm, NonMultiplicationSectionFillsOnes) {
    // a = 0x1f, b = 0x11: high halves (1,1) -> 256. Low halves (15, 1):
    // scanning from bit 3: a has 1s, b only bit 0; first collision at bit 0,
    // so bits [3:1] are OR bits (1,1,1), bit 0 collides -> fills bit 0.
    const uint64_t p = etm_multiply(8, 0x1f, 0x11);
    EXPECT_EQ(p, 256u + 0xfu);
}

TEST(Etm, Table4GoldenNumbers8Bit) {
    // Paper Table IV: MRED 25.2 %, NMED 2.8 %, ER 98.8 %. Our calibrated
    // variant lands at 25.1 / 2.84 / 99.2 (documented in EXPERIMENTS.md).
    const ErrorMetrics m = exhaustive_metrics(
        8, [](uint64_t a, uint64_t b) { return etm_multiply(8, a, b); });
    EXPECT_NEAR(m.mred * 100.0, 25.2, 0.3);
    EXPECT_NEAR(m.nmed * 100.0, 2.8, 0.1);
    EXPECT_NEAR(m.error_rate * 100.0, 98.8, 0.5);
}

TEST(Etm, RejectsOddWidths) {
    EXPECT_THROW((void)etm_multiply(7, 1, 1), std::invalid_argument);
    EXPECT_THROW((void)build_etm_multiplier(7), std::invalid_argument);
}

class EtmNetlist : public testing::TestWithParam<int> {};

TEST_P(EtmNetlist, MatchesFunctionalModel) {
    const int width = GetParam();
    const MultiplierNetlist m = build_etm_multiplier(width);
    if (width <= 6) {
        const uint64_t side = uint64_t{1} << width;
        for (uint64_t a = 0; a < side; ++a) {
            for (uint64_t b = 0; b < side; ++b) {
                ASSERT_EQ(simulate_one(m, a, b), etm_multiply(width, a, b)) << a << "*" << b;
            }
        }
    } else {
        Xoshiro256 rng(width * 3);
        const uint64_t mask = (uint64_t{1} << width) - 1;
        std::vector<uint64_t> as(64), bs(64);
        for (int pass = 0; pass < 8; ++pass) {
            for (int i = 0; i < 64; ++i) {
                as[i] = rng.next() & mask;
                bs[i] = rng.next() & mask;
            }
            const auto prods = simulate_batch(m, as, bs);
            for (int i = 0; i < 64; ++i) {
                ASSERT_EQ(prods[i], etm_multiply(width, as[i], bs[i]))
                    << as[i] << "*" << bs[i];
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, EtmNetlist, testing::Values(2, 4, 6, 8, 16),
                         [](const auto& pinfo) { return "w" + std::to_string(pinfo.param); });

// --- Truncated ----------------------------------------------------------------

TEST(Truncated, CutZeroIsExact) {
    for (uint64_t a = 0; a < 64; ++a) {
        for (uint64_t b = 0; b < 64; ++b) {
            EXPECT_EQ(truncated_multiply(6, 0, a, b), a * b);
        }
    }
}

TEST(Truncated, ErrorMonotoneInCut) {
    double prev = -1.0;
    for (int cut : {0, 2, 4, 6}) {
        const ErrorMetrics m = exhaustive_metrics(
            8, [&](uint64_t a, uint64_t b) { return truncated_multiply(8, cut, a, b); });
        EXPECT_GE(m.mred, prev) << cut;
        prev = m.mred;
    }
}

TEST(Truncated, NetlistMatchesModelExhaustive6Bit) {
    for (int cut : {2, 4}) {
        const MultiplierNetlist m = build_truncated_multiplier(6, cut);
        for (uint64_t a = 0; a < 64; ++a) {
            for (uint64_t b = 0; b < 64; ++b) {
                ASSERT_EQ(simulate_one(m, a, b), truncated_multiply(6, cut, a, b))
                    << "cut " << cut << ": " << a << "*" << b;
            }
        }
    }
}

TEST(Truncated, FewerGatesThanAccurate) {
    const MultiplierNetlist full = build_accurate_multiplier(8);
    const MultiplierNetlist trunc = build_truncated_multiplier(8, 6);
    EXPECT_LT(trunc.net.logic_gate_count(), full.net.logic_gate_count());
}

TEST(Truncated, RejectsBadCut) {
    EXPECT_THROW((void)build_truncated_multiplier(8, -1), std::invalid_argument);
    EXPECT_THROW((void)build_truncated_multiplier(8, 16), std::invalid_argument);
}

// --- Cross-model sanity --------------------------------------------------------

TEST(Baselines, SdlcBeatsEtmAndKulkarniOnMredAt8Bit) {
    // The paper's central comparison (Table IV ordering).
    const ErrorMetrics etm = exhaustive_metrics(
        8, [](uint64_t a, uint64_t b) { return etm_multiply(8, a, b); });
    const ErrorMetrics kul = exhaustive_metrics(
        8, [](uint64_t a, uint64_t b) { return kulkarni_multiply(8, a, b); });
    EXPECT_GT(etm.mred, kul.mred);
    EXPECT_GT(kul.mred, 0.0199);  // SDLC 8-bit d2 MRED is 0.0199 (ratio)
}

}  // namespace
}  // namespace sdlc
