// Bit-identity battery for the bit-sliced evaluation engine.
//
// The engine's contract is absolute: every product it emits, and every
// ErrorMetrics the exhaustive evaluator derives from them, is bit-identical
// to the scalar MultiplyKernel path — for every eligible configuration,
// every operand pair, every lane alignment, and every threading mode. This
// suite enforces each clause:
//
//   - transpose64 round-trips (it is its own inverse on the plane matrix);
//   - exhaustive block identity over the full operand square for every
//     eligible config of the width-2..8 sweep grid (the same 252-config
//     grid kernel_netlist_diff_test pins), on both the general
//     multiply_block path and the prepare + multiply_block_prepared fast
//     path;
//   - lane misalignment: arbitrary b0 offsets and partial lane counts;
//   - widths 12-16: corner operands plus fixed-seed random streams (the
//     square is 16M-4G pairs there, so exhaustive identity is enforced at
//     the engine level for width 12 and spot-checked structurally above);
//   - engine level: exhaustive_metrics_sliced == exhaustive_metrics
//     (ErrorMetrics operator== is bit-exact) inline, with dedicated
//     threads, and sharded over a ThreadPool.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "api/approx_multiplier.h"
#include "core/kernels.h"
#include "core/kernels_sliced.h"
#include "dse/sweep.h"
#include "error/evaluate.h"
#include "error/evaluate_sliced.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sdlc {
namespace {

MultiplierConfig make_config(int width, int depth, MultiplierVariant variant,
                             AccumulationScheme scheme = AccumulationScheme::kRowRipple) {
    MultiplierConfig cfg;
    cfg.width = width;
    cfg.depth = depth;
    cfg.variant = variant;
    cfg.scheme = scheme;
    return cfg;
}

TEST(Transpose64, RoundTripsRandomMatrix) {
    Xoshiro256 rng(0x7a05e5);
    uint64_t m[64], original[64], out[64];
    for (auto& word : m) word = rng.next();
    for (int i = 0; i < 64; ++i) original[i] = m[i];

    // Spot-check the definition: bit j of transposed word l == bit l of
    // original word j.
    transpose64_to(out, m);
    for (int l = 0; l < 8; ++l) {
        for (int j = 0; j < 64; ++j) {
            ASSERT_EQ((out[l] >> j) & 1u, (original[j] >> l) & 1u) << "l=" << l << " j=" << j;
        }
    }

    // Involution: transposing twice restores the matrix, in place and out
    // of place (dst may alias src).
    transpose64(m);
    for (int i = 0; i < 64; ++i) ASSERT_EQ(m[i], out[i]);
    transpose64(m);
    for (int i = 0; i < 64; ++i) ASSERT_EQ(m[i], original[i]);
    transpose64_to(m, m);
    for (int i = 0; i < 64; ++i) ASSERT_EQ(m[i], out[i]);
}

TEST(SlicedEligibility, MatchesDocumentedRules) {
    // Planned-path configs in [2, 16] with depth in [2, width] qualify.
    EXPECT_TRUE(SlicedMultiplyKernel::eligible(make_config(8, 2, MultiplierVariant::kSdlc)));
    EXPECT_TRUE(SlicedMultiplyKernel::eligible(make_config(2, 2, MultiplierVariant::kSdlc)));
    EXPECT_TRUE(SlicedMultiplyKernel::eligible(make_config(16, 16, MultiplierVariant::kSdlc)));
    EXPECT_TRUE(
        SlicedMultiplyKernel::eligible(make_config(12, 3, MultiplierVariant::kCompensated)));

    // Exact configurations and out-of-range widths/depths do not: the
    // accurate scalar kernel is already optimal for them.
    EXPECT_FALSE(SlicedMultiplyKernel::eligible(make_config(8, 2, MultiplierVariant::kAccurate)));
    EXPECT_FALSE(SlicedMultiplyKernel::eligible(make_config(8, 1, MultiplierVariant::kSdlc)));
    EXPECT_FALSE(SlicedMultiplyKernel::eligible(make_config(17, 2, MultiplierVariant::kSdlc)));
    EXPECT_FALSE(SlicedMultiplyKernel::eligible(make_config(1, 1, MultiplierVariant::kSdlc)));

    EXPECT_THROW(SlicedMultiplyKernel(make_config(8, 2, MultiplierVariant::kAccurate)),
                 std::invalid_argument);
}

/// Exhaustive identity over the full operand square: every (a, b) pair via
/// both block entry points against the scalar kernel.
void expect_sliced_matches_scalar_exhaustive(const MultiplierConfig& config) {
    const MultiplyKernel scalar(config);
    const SlicedMultiplyKernel sliced(config);
    const uint64_t side = uint64_t{1} << config.width;
    const unsigned lanes = sliced.natural_lanes();
    ASSERT_EQ(lanes, side < 64 ? side : 64u);
    uint64_t out[64];
    SlicedMultiplyKernel::Prepared prep;

    for (uint64_t a = 0; a < side; ++a) {
        sliced.prepare(a, prep);
        ASSERT_EQ(prep.a, a);
        for (uint64_t b0 = 0; b0 < side; b0 += lanes) {
            sliced.multiply_block_prepared(prep, b0, out);
            for (unsigned l = 0; l < lanes; ++l) {
                ASSERT_EQ(out[l], scalar(a, b0 + l))
                    << "prepared a=" << a << " b=" << b0 + l;
            }
            // The general path must agree on the same aligned block.
            sliced.multiply_block(a, b0, lanes, out);
            for (unsigned l = 0; l < lanes; ++l) {
                ASSERT_EQ(out[l], scalar(a, b0 + l)) << "block a=" << a << " b=" << b0 + l;
            }
        }
    }
}

TEST(SlicedKernel, ExhaustiveIdentitySweepGridWidths2To8) {
    SweepSpec spec;
    spec.widths.clear();
    for (int w = 2; w <= 8; ++w) spec.widths.push_back(w);
    const std::vector<MultiplierConfig> grid = spec.enumerate();
    ASSERT_EQ(grid.size(), 252u);
    size_t eligible = 0;
    for (const MultiplierConfig& config : grid) {
        SCOPED_TRACE(ApproxMultiplier(config).describe());
        if (!SlicedMultiplyKernel::eligible(config)) {
            // Only exact configurations fall back in this grid.
            EXPECT_TRUE(config.variant == MultiplierVariant::kAccurate || config.depth < 2);
            continue;
        }
        ++eligible;
        expect_sliced_matches_scalar_exhaustive(config);
        if (HasFatalFailure()) return;
    }
    // depths 2..w for 2 variants x 4 schemes per width: 2*4*sum(w-1).
    EXPECT_EQ(eligible, 224u);
}

TEST(SlicedKernel, LaneMisalignment) {
    // Arbitrary b0 offsets and partial lane counts through the general
    // path — the case the aligned sweep fast path never exercises.
    for (const MultiplierConfig& config :
         {make_config(8, 3, MultiplierVariant::kSdlc),
          make_config(10, 2, MultiplierVariant::kCompensated),
          make_config(12, 4, MultiplierVariant::kSdlc, AccumulationScheme::kWallace)}) {
        SCOPED_TRACE(ApproxMultiplier(config).describe());
        const MultiplyKernel scalar(config);
        const SlicedMultiplyKernel sliced(config);
        const uint64_t mask = (uint64_t{1} << config.width) - 1;
        uint64_t out[64];
        Xoshiro256 rng(0xa119 ^ static_cast<uint64_t>(config.width));
        for (int iter = 0; iter < 256; ++iter) {
            const uint64_t a = rng.next() & mask;
            const unsigned lanes = 1 + static_cast<unsigned>(rng.next() % 64);
            // Keep b0 + lanes - 1 inside the operand width.
            const uint64_t b0 = rng.next() % (mask + 2 - lanes);
            sliced.multiply_block(a, b0, lanes, out);
            for (unsigned l = 0; l < lanes; ++l) {
                ASSERT_EQ(out[l], scalar(a, b0 + l))
                    << "a=" << a << " b0=" << b0 << " lanes=" << lanes << " l=" << l;
            }
        }
    }
}

TEST(SlicedKernel, WideWidthsCornersAndRandomStreams) {
    // Widths 12-16: the operand square is too large for per-config
    // exhaustion here, so pin corner operands plus a fixed-seed random
    // stream per config (1024 prepared blocks and 256 general blocks each).
    const MultiplierConfig configs[] = {
        make_config(12, 2, MultiplierVariant::kSdlc),
        make_config(13, 5, MultiplierVariant::kCompensated, AccumulationScheme::kDadda),
        make_config(14, 3, MultiplierVariant::kSdlc, AccumulationScheme::kRowFastCpa),
        make_config(15, 2, MultiplierVariant::kCompensated),
        make_config(16, 4, MultiplierVariant::kSdlc, AccumulationScheme::kWallace),
        make_config(16, 16, MultiplierVariant::kSdlc),
    };
    for (const MultiplierConfig& config : configs) {
        SCOPED_TRACE(ApproxMultiplier(config).describe());
        const MultiplyKernel scalar(config);
        const SlicedMultiplyKernel sliced(config);
        const uint64_t mask = (uint64_t{1} << config.width) - 1;
        const unsigned lanes = sliced.natural_lanes();
        ASSERT_EQ(lanes, 64u);
        uint64_t out[64];
        SlicedMultiplyKernel::Prepared prep;

        auto check_prepared = [&](uint64_t a, uint64_t b0) {
            sliced.prepare(a, prep);
            sliced.multiply_block_prepared(prep, b0, out);
            for (unsigned l = 0; l < lanes; ++l) {
                ASSERT_EQ(out[l], scalar(a, b0 + l)) << "a=" << a << " b=" << b0 + l;
            }
        };

        // Corner operands x corner blocks (first, last, middle-aligned).
        const uint64_t corners[] = {0, 1, mask, mask - 1, mask >> 1, (mask >> 1) + 1};
        const uint64_t corner_blocks[] = {0, (mask + 1) / 2, mask + 1 - lanes};
        for (const uint64_t a : corners) {
            for (const uint64_t b0 : corner_blocks) check_prepared(a, b0);
        }
        if (HasFatalFailure()) return;

        Xoshiro256 rng(0x511ced ^ (static_cast<uint64_t>(config.width) << 16) ^
                       (static_cast<uint64_t>(config.depth) << 8) ^
                       static_cast<uint64_t>(static_cast<int>(config.scheme)));
        for (int iter = 0; iter < 1024; ++iter) {
            const uint64_t a = rng.next() & mask;
            const uint64_t b0 = (rng.next() & mask) & ~uint64_t{lanes - 1};
            check_prepared(a, b0);
            if (HasFatalFailure()) return;
        }
        for (int iter = 0; iter < 256; ++iter) {
            const uint64_t a = rng.next() & mask;
            const unsigned n = 1 + static_cast<unsigned>(rng.next() % 64);
            const uint64_t b0 = rng.next() % (mask + 2 - n);
            sliced.multiply_block(a, b0, n, out);
            for (unsigned l = 0; l < n; ++l) {
                ASSERT_EQ(out[l], scalar(a, b0 + l)) << "a=" << a << " b=" << b0 + l;
            }
            if (HasFatalFailure()) return;
        }
    }
}

/// exhaustive_metrics over the scalar kernel for `config`.
ErrorMetrics scalar_exhaustive(const MultiplierConfig& config, unsigned max_threads = 0,
                               ThreadPool* pool = nullptr) {
    const MultiplyKernel kernel(config);
    return exhaustive_metrics(
        config.width, [&kernel](uint64_t a, uint64_t b) { return kernel(a, b); }, max_threads,
        pool);
}

TEST(SlicedEngine, MetricsBitIdenticalAcrossWidthsAndThreading) {
    // The full engine contract: identical ErrorMetrics (operator== is
    // field-exact on doubles — same summation order, same bits) for every
    // threading mode. Width 10 keeps the square at 1M pairs so the matrix
    // of modes stays fast; width 12 runs once inline below.
    const MultiplierConfig configs[] = {
        make_config(6, 2, MultiplierVariant::kSdlc),
        make_config(9, 3, MultiplierVariant::kSdlc, AccumulationScheme::kWallace),
        make_config(10, 2, MultiplierVariant::kCompensated),
        make_config(10, 4, MultiplierVariant::kSdlc),
    };
    ThreadPool pool(3);
    for (const MultiplierConfig& config : configs) {
        SCOPED_TRACE(ApproxMultiplier(config).describe());
        const SlicedMultiplyKernel kernel(config);
        const ErrorMetrics reference = scalar_exhaustive(config);

        EXPECT_EQ(exhaustive_metrics_sliced(kernel), reference);
        EXPECT_EQ(exhaustive_metrics_sliced(kernel, 1), reference);
        EXPECT_EQ(exhaustive_metrics_sliced(kernel, 4), reference);
        EXPECT_EQ(exhaustive_metrics_sliced(kernel, 0, &pool), reference);

        // And the scalar engine agrees with itself across its own modes
        // (the merge order, not the thread count, defines the result).
        EXPECT_EQ(scalar_exhaustive(config, 4), reference);
        EXPECT_EQ(scalar_exhaustive(config, 0, &pool), reference);
    }
}

TEST(SlicedEngine, MetricsBitIdenticalWidth12) {
    // One width-12 config end to end: 16.7M pairs through both engines.
    const MultiplierConfig config = make_config(12, 3, MultiplierVariant::kSdlc);
    const SlicedMultiplyKernel kernel(config);
    EXPECT_EQ(exhaustive_metrics_sliced(kernel), scalar_exhaustive(config));
}

}  // namespace
}  // namespace sdlc
