// Tests for the DSE thread pool and its parallel_for index scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "dse/thread_pool.h"

namespace sdlc {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
    ThreadPool pool(0);
    EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturns) {
    ThreadPool pool(2);
    pool.wait_idle();  // nothing queued: must not block
}

TEST(ParallelFor, CoversEachIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, IndexAddressedWritesAreDeterministic) {
    ThreadPool pool(4);
    std::vector<uint64_t> out(500);
    parallel_for(pool, out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelFor, HandlesEdgeSizes) {
    ThreadPool pool(4);
    parallel_for(pool, 0, [](size_t) { FAIL() << "no index should run"; });

    std::atomic<int> ran{0};
    parallel_for(pool, 1, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 1);

    // Fewer indices than workers.
    std::vector<std::atomic<int>> hits(2);
    parallel_for(pool, 2, [&](size_t i) { hits[i].fetch_add(1); });
    EXPECT_EQ(hits[0].load(), 1);
    EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelFor, PropagatesFirstException) {
    ThreadPool pool(4);
    EXPECT_THROW(
        parallel_for(pool, 100,
                     [](size_t i) {
                         if (i == 17) throw std::runtime_error("boom");
                     }),
        std::runtime_error);
    // The pool survives a failed loop and remains usable.
    std::atomic<int> counter{0};
    parallel_for(pool, 10, [&](size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelFor, PoolIsReusableAcrossManyLoops) {
    ThreadPool pool(3);
    uint64_t total = 0;
    for (int round = 0; round < 20; ++round) {
        std::vector<uint64_t> out(64);
        parallel_for(pool, out.size(), [&](size_t i) { out[i] = i + 1; });
        total += std::accumulate(out.begin(), out.end(), uint64_t{0});
    }
    EXPECT_EQ(total, 20u * (64u * 65u / 2u));
}

TEST(ParallelFor, SingleWorkerRunsInline) {
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(8);
    parallel_for(pool, seen.size(), [&](size_t i) { seen[i] = std::this_thread::get_id(); });
    for (const auto& id : seen) EXPECT_EQ(id, caller);
}

}  // namespace
}  // namespace sdlc
