// Tests for the ClusterPlan (significance-driven cluster sizing).
#include <gtest/gtest.h>

#include "core/cluster_plan.h"

namespace sdlc {
namespace {

TEST(ClusterPlan, Depth2Width8MatchesPaperFigure2) {
    // Paper Figure 2: clusters 2x7, 2x6, 2x5, 2x4 for the 8x8 multiplier.
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    ASSERT_EQ(plan.groups().size(), 4u);
    const int expected_extent[] = {7, 6, 5, 4};
    for (int g = 0; g < 4; ++g) {
        EXPECT_EQ(plan.groups()[g].base_row, 2 * g);
        EXPECT_EQ(plan.groups()[g].rows, 2);
        EXPECT_EQ(plan.groups()[g].extent, expected_extent[g]);
    }
}

TEST(ClusterPlan, Depth1IsAccurate) {
    const ClusterPlan plan = ClusterPlan::make(8, 1);
    EXPECT_TRUE(plan.groups().empty());
    EXPECT_EQ(plan.compression_sites(), 0);
    EXPECT_NE(plan.describe().find("accurate"), std::string::npos);
}

TEST(ClusterPlan, Depth3Width8GroupsRows332) {
    const ClusterPlan plan = ClusterPlan::make(8, 3);
    ASSERT_EQ(plan.groups().size(), 3u);
    EXPECT_EQ(plan.groups()[0].rows, 3);
    EXPECT_EQ(plan.groups()[1].rows, 3);
    EXPECT_EQ(plan.groups()[2].rows, 2);  // trailing partial cluster
    EXPECT_EQ(plan.groups()[0].base_row, 0);
    EXPECT_EQ(plan.groups()[1].base_row, 3);
    EXPECT_EQ(plan.groups()[2].base_row, 6);
}

TEST(ClusterPlan, Depth4Width8GroupsRows44) {
    const ClusterPlan plan = ClusterPlan::make(8, 4);
    ASSERT_EQ(plan.groups().size(), 2u);
    EXPECT_EQ(plan.groups()[0].rows, 4);
    EXPECT_EQ(plan.groups()[1].rows, 4);
}

TEST(ClusterPlan, ExtentsShrinkWithGroupIndex) {
    for (int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(16, depth);
        for (size_t g = 1; g < plan.groups().size(); ++g) {
            EXPECT_LT(plan.groups()[g].extent, plan.groups()[g - 1].extent)
                << "depth " << depth << " group " << g;
        }
    }
}

TEST(ClusterPlan, ExtentNeverExceedsOverlapRange) {
    for (int width : {4, 8, 16, 32}) {
        for (int depth : {2, 3, 4, 8}) {
            if (depth > width) continue;
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            for (const ClusterGroup& g : plan.groups()) {
                EXPECT_LE(g.extent, width + g.rows - 3);
                EXPECT_GE(g.extent, 1);
                EXPECT_GE(g.rows, 2);
            }
        }
    }
}

TEST(ClusterPlan, GroupOfRowFindsOwner) {
    const ClusterPlan plan = ClusterPlan::make(8, 3);
    EXPECT_EQ(plan.group_of_row(0), &plan.groups()[0]);
    EXPECT_EQ(plan.group_of_row(2), &plan.groups()[0]);
    EXPECT_EQ(plan.group_of_row(3), &plan.groups()[1]);
    EXPECT_EQ(plan.group_of_row(7), &plan.groups()[2]);
}

TEST(ClusterPlan, LoneTrailingRowIsUncompressed) {
    // width 9, depth 2: rows 0..7 in four clusters; row 8 has no partner.
    const ClusterPlan plan = ClusterPlan::make(9, 2);
    EXPECT_EQ(plan.group_of_row(8), nullptr);
}

TEST(ClusterPlan, CompressesWeightPredicate) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    const ClusterGroup& g0 = plan.groups()[0];
    EXPECT_FALSE(g0.compresses_weight(0));  // base LSB is exact
    EXPECT_TRUE(g0.compresses_weight(1));
    EXPECT_TRUE(g0.compresses_weight(7));
    EXPECT_FALSE(g0.compresses_weight(8));
}

TEST(ClusterPlan, RejectsBadArguments) {
    EXPECT_THROW(ClusterPlan::make(0, 2), std::invalid_argument);
    EXPECT_THROW(ClusterPlan::make(8, 0), std::invalid_argument);
    EXPECT_THROW(ClusterPlan::make(8, 9), std::invalid_argument);
    EXPECT_THROW(ClusterPlan::make(500, 2), std::invalid_argument);
}

TEST(ClusterPlan, DescribeListsClusters) {
    const std::string d = ClusterPlan::make(8, 2).describe();
    EXPECT_NE(d.find("N=8"), std::string::npos);
    EXPECT_NE(d.find("2x7"), std::string::npos);
    EXPECT_NE(d.find("2x4"), std::string::npos);
}

TEST(ClusterPlan, CompressionSitesCountsExtents) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    EXPECT_EQ(plan.compression_sites(), 7 + 6 + 5 + 4);
}

class ClusterPlanWidths : public testing::TestWithParam<int> {};

TEST_P(ClusterPlanWidths, EveryRowBelongsToAtMostOneGroup) {
    const int width = GetParam();
    for (int depth = 2; depth <= 4; ++depth) {
        const ClusterPlan plan = ClusterPlan::make(width, depth);
        for (int r = 0; r < width; ++r) {
            int owners = 0;
            for (const ClusterGroup& g : plan.groups()) {
                if (r >= g.base_row && r < g.base_row + g.rows) ++owners;
            }
            EXPECT_LE(owners, 1) << "width " << width << " depth " << depth << " row " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClusterPlanWidths,
                         testing::Values(4, 6, 8, 12, 16, 32, 64, 128));

}  // namespace
}  // namespace sdlc
