// Tests for the SDLC functional models, including exact reproduction of the
// paper's exhaustive error tables (the strongest validation in the suite:
// every printed digit of Tables II and III must match).
#include <gtest/gtest.h>

#include "core/cluster_plan.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "util/rng.h"

namespace sdlc {
namespace {

// --- Golden numbers from the paper ----------------------------------------

struct TableIIRow {
    int width;
    double mred_pct;
    double nmed;
    double er_pct;
    double maxred_pct;
};

/// Paper Table II (depth-2 SDLC): MRED, NMED, ER, MAX(RED).
/// Note on rounding: the paper prints MRED with 5 decimals; our exhaustive
/// sums match to ~4 decimals (their Matlab accumulation order differs).
class TableII : public testing::TestWithParam<TableIIRow> {};

TEST_P(TableII, ExhaustiveMetricsMatchPaper) {
    const TableIIRow row = GetParam();
    const ClusterPlan plan = ClusterPlan::make(row.width, 2);
    const ErrorMetrics m = exhaustive_metrics(
        row.width, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
    EXPECT_NEAR(m.mred * 100.0, row.mred_pct, 5e-4) << row.width << "-bit MRED";
    EXPECT_NEAR(m.nmed, row.nmed, 5e-7) << row.width << "-bit NMED";
    EXPECT_NEAR(m.error_rate * 100.0, row.er_pct, 5e-3) << row.width << "-bit ER";
    EXPECT_NEAR(m.max_red * 100.0, row.maxred_pct, 5e-4) << row.width << "-bit MAXRED";
}

INSTANTIATE_TEST_SUITE_P(
    PaperGolden, TableII,
    testing::Values(TableIIRow{4, 2.77351, 0.010556, 19.53, 31.1111},
                    TableIIRow{6, 2.65883, 0.006393, 34.96, 32.8042},
                    TableIIRow{8, 1.98827, 0.003527, 49.11, 33.2026}),
    [](const auto& pinfo) { return "w" + std::to_string(pinfo.param.width); });

struct TableIIIRow {
    int depth;
    double mred_pct;
    double nmed;
    double er_pct;
    double maxred_pct;
};

/// Paper Table III (8-bit, depths 2/3/4).
class TableIII : public testing::TestWithParam<TableIIIRow> {};

TEST_P(TableIII, ExhaustiveDepthMetricsMatchPaper) {
    const TableIIIRow row = GetParam();
    const ClusterPlan plan = ClusterPlan::make(8, row.depth);
    const ErrorMetrics m = exhaustive_metrics(
        8, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
    EXPECT_NEAR(m.mred * 100.0, row.mred_pct, 5e-4) << "depth " << row.depth;
    EXPECT_NEAR(m.nmed, row.nmed, 5e-5) << "depth " << row.depth;
    EXPECT_NEAR(m.error_rate * 100.0, row.er_pct, 5e-3) << "depth " << row.depth;
    EXPECT_NEAR(m.max_red * 100.0, row.maxred_pct, 5e-3) << "depth " << row.depth;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGolden, TableIII,
    testing::Values(TableIIIRow{2, 1.98827, 0.003527, 49.11, 33.2026},
                    TableIIIRow{3, 4.6847, 0.0101, 65.73, 42.69},
                    TableIIIRow{4, 10.5836, 0.0327, 77.57, 46.48}),
    [](const auto& pinfo) { return "d" + std::to_string(pinfo.param.depth); });

// --- Model invariants -------------------------------------------------------

TEST(SdlcFunctional, NeverOvershootsExactProduct) {
    // OR-compression can only lose carries: P' <= P always.
    for (int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        for (uint64_t a = 0; a < 256; ++a) {
            for (uint64_t b = 0; b < 256; ++b) {
                EXPECT_LE(sdlc_multiply(plan, a, b), a * b);
            }
        }
    }
}

TEST(SdlcFunctional, ExactWhenEitherOperandZeroOrPowerOfTwo) {
    // A single set bit in A creates one PP bit per row: no vertical pairs in
    // the same column position j and j-1, but collisions need adjacent A
    // bits, so any power-of-two A is always exact at depth 2.
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    for (uint64_t a : {0ull, 1ull, 2ull, 4ull, 8ull, 16ull, 32ull, 64ull, 128ull}) {
        for (uint64_t b = 0; b < 256; ++b) {
            EXPECT_EQ(sdlc_multiply(plan, a, b), a * b) << a << "*" << b;
        }
    }
}

TEST(SdlcFunctional, ExactWhenBHasNoCompletePair) {
    // Depth-2 collisions need both B bits of some row pair (2g, 2g+1).
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    for (uint64_t b : {0x55ull, 0xAAull, 0x11ull, 0x44ull}) {  // no adjacent pair in any (even,odd) slot
        bool has_pair = false;
        for (int g = 0; g < 4; ++g) has_pair |= ((b >> (2 * g)) & 3u) == 3u;
        ASSERT_FALSE(has_pair);
        for (uint64_t a = 0; a < 256; ++a) {
            EXPECT_EQ(sdlc_multiply(plan, a, b), a * b);
        }
    }
}

TEST(SdlcFunctional, Depth1IsExactEverywhere) {
    const ClusterPlan plan = ClusterPlan::make(6, 1);
    for (uint64_t a = 0; a < 64; ++a) {
        for (uint64_t b = 0; b < 64; ++b) {
            EXPECT_EQ(sdlc_multiply(plan, a, b), a * b);
        }
    }
}

TEST(SdlcFunctional, KnownHandComputedCase) {
    // 8-bit, depth 2: A = B = 3 = 0b11. Rows 0 and 1 both have bits at
    // columns 0 and 1. Cluster 0 ORs weight 1 (A1B0 with A0B1) -> one carry
    // lost: P' = 9 - 2 = 7.
    EXPECT_EQ(sdlc_multiply(8, 2, 3, 3), 7u);
    // A=3, B=2: row 1 only; no vertical pair -> exact.
    EXPECT_EQ(sdlc_multiply(8, 2, 3, 2), 6u);
}

TEST(SdlcFunctional, ErrorGrowsMonotonicallyWithDepthOnAverage) {
    double prev = -1.0;
    for (int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const ErrorMetrics m = exhaustive_metrics(
            8, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
        EXPECT_GT(m.mred, prev);
        prev = m.mred;
    }
}

TEST(SdlcFunctional, MredFallsWithWidth) {
    // Paper: "MRED and NMED fall drastically as the size is increased".
    double prev = 1e9;
    for (int width : {4, 6, 8, 10, 12}) {
        const ClusterPlan plan = ClusterPlan::make(width, 2);
        const ErrorMetrics m = exhaustive_metrics(
            width, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
        if (width > 4) {
            EXPECT_LT(m.mred, prev) << width;
        }
        prev = m.mred;
    }
}

TEST(SdlcFunctional, IsExactPredicateAgreesWithModel) {
    const ClusterPlan plan = ClusterPlan::make(8, 3);
    Xoshiro256 rng(5);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t a = rng.next() & 0xff, b = rng.next() & 0xff;
        EXPECT_EQ(sdlc_is_exact(plan, a, b), sdlc_multiply(plan, a, b) == a * b);
    }
}

// --- Fast path equivalence --------------------------------------------------

class FastPathWidths : public testing::TestWithParam<int> {};

TEST_P(FastPathWidths, FastDepth2MatchesGenericModel) {
    const int width = GetParam();
    const ClusterPlan plan = ClusterPlan::make(width, 2);
    if (width <= 8) {
        const uint64_t side = uint64_t{1} << width;
        for (uint64_t a = 0; a < side; ++a) {
            for (uint64_t b = 0; b < side; ++b) {
                ASSERT_EQ(sdlc_error_distance_fast2(width, a, b),
                          sdlc_error_distance(plan, a, b))
                    << a << "," << b;
            }
        }
    } else {
        Xoshiro256 rng(42 + static_cast<uint64_t>(width));
        const uint64_t mask = (uint64_t{1} << width) - 1;
        for (int i = 0; i < 200000; ++i) {
            const uint64_t a = rng.next() & mask, b = rng.next() & mask;
            ASSERT_EQ(sdlc_error_distance_fast2(width, a, b), sdlc_error_distance(plan, a, b))
                << width << ": " << a << "," << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FastPathWidths, testing::Values(2, 4, 6, 8, 12, 16, 24, 32));

TEST(SdlcFunctional, RejectsWidthAbove32) {
    const ClusterPlan plan = ClusterPlan::make(64, 2);
    EXPECT_THROW((void)sdlc_multiply(plan, 1, 1), std::invalid_argument);
    EXPECT_THROW((void)sdlc_multiply_fast2(64, 1, 1), std::invalid_argument);
}

TEST(SdlcFunctional, SixteenBitSampledMatchesExhaustiveGroundTruth) {
    // Exhaustive ground truth at 16 bits (run once offline, and available via
    // the table2 bench's --exhaustive mode): MRED 0.28730 %, NMED 0.000243,
    // ER 83.85 %, MAXRED 33.3328 %. (The paper's Table II 16-bit row — ER
    // 78.72 % — is inconsistent with its own exhaustively-verified 4–12-bit
    // trend; see EXPERIMENTS.md.) A 2^22-point sample must reproduce the
    // exhaustive values within sampling noise.
    const ErrorMetrics m = sampled_metrics(
        16, 1u << 22, 0xfeed, [](uint64_t a, uint64_t b) {
            return sdlc_multiply_fast2(16, a, b);
        });
    EXPECT_NEAR(m.error_rate * 100.0, 83.85, 0.2);
    EXPECT_NEAR(m.mred * 100.0, 0.287, 0.02);
    EXPECT_NEAR(m.nmed, 0.000243, 0.00002);
}

}  // namespace
}  // namespace sdlc
