// Durable cache store: crash-safe recovery semantics of the append-only
// log + snapshot pair behind `cache_tool --data-dir`.
//
// The properties under test are the ones the restart smoke scenario leans
// on: every record written before a crash point survives recovery
// bit-exactly, a torn or corrupt log tail is truncated away instead of
// poisoning the store, and compaction never changes the recovered
// contents (only where they live on disk).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "dse/cache_store.h"
#include "tech/synthesis.h"
#include "util/rng.h"

namespace sdlc {
namespace {

namespace fs = std::filesystem;

SynthesisReport sample_report(uint64_t seed) {
    Xoshiro256 rng(seed);
    SynthesisReport r;
    r.cells = rng.below(10000);
    r.depth = static_cast<int>(rng.below(64));
    r.area_um2 = 0.25 + static_cast<double>(rng.below(1000)) * 1e-7;
    r.delay_ps = 1234.5678901234567;
    r.dynamic_energy_fj = 1.0 / 3.0;
    r.dynamic_power_uw = 1e-300 * static_cast<double>(1 + rng.below(100));
    r.leakage_nw = 5e-324 * static_cast<double>(1 + rng.below(100));
    r.energy_fj = 0.1 + static_cast<double>(rng.below(1000)) * 1e-13;
    return r;
}

/// Fresh empty data dir under the test temp root.
std::string fresh_dir(const std::string& name) {
    const fs::path dir = fs::path(testing::TempDir()) / name;
    fs::remove_all(dir);
    return dir.string();
}

std::string read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(DurableCacheStore, RoundTripsEntriesAcrossReopen) {
    const std::string dir = fresh_dir("durable_roundtrip");
    DurableStoreOptions opts;
    opts.dir = dir;
    std::string error;

    std::vector<SynthesisReport> reports;
    {
        DurableCacheStore store;
        ASSERT_TRUE(store.open(opts, error)) << error;
        EXPECT_EQ(store.recovery().snapshot_entries, 0u);
        EXPECT_EQ(store.recovery().log_records, 0u);
        for (uint64_t key = 1; key <= 16; ++key) {
            reports.push_back(sample_report(key));
            ASSERT_TRUE(store.append(key, reports.back(), error)) << error;
        }
        // First write wins: re-appending a key is a no-op, not a rewrite.
        const uint64_t before = store.log_bytes();
        ASSERT_TRUE(store.append(1, sample_report(999), error)) << error;
        EXPECT_EQ(store.log_bytes(), before);
        EXPECT_TRUE(store.entries().at(1) == reports[0]);
    }

    DurableCacheStore recovered;
    ASSERT_TRUE(recovered.open(opts, error)) << error;
    EXPECT_EQ(recovered.recovery().snapshot_entries, 0u);
    EXPECT_EQ(recovered.recovery().log_records, 16u);
    EXPECT_EQ(recovered.recovery().truncated_bytes, 0u);
    ASSERT_EQ(recovered.entries().size(), 16u);
    for (uint64_t key = 1; key <= 16; ++key) {
        // Bit-exact: the on-disk encoding is the wire's hex bit patterns.
        EXPECT_TRUE(recovered.entries().at(key) == reports[key - 1]);
    }
}

TEST(DurableCacheStore, TornLogTailIsTruncatedWithoutDataLoss) {
    const std::string dir = fresh_dir("durable_torn_tail");
    DurableStoreOptions opts;
    opts.dir = dir;
    std::string error;
    {
        DurableCacheStore store;
        ASSERT_TRUE(store.open(opts, error)) << error;
        for (uint64_t key = 1; key <= 8; ++key) {
            ASSERT_TRUE(store.append(key, sample_report(key), error)) << error;
        }
    }

    // Simulate a crash mid-append: a partial frame at the log's tail.
    const fs::path log = fs::path(dir) / "cache.log";
    const uint64_t intact = fs::file_size(log);
    {
        std::ofstream out(log, std::ios::binary | std::ios::app);
        const char torn[] = "\x40\x00\x00\x00\xde\xad\xbe\xef only half a fra";
        out.write(torn, sizeof torn - 1);
    }
    ASSERT_GT(fs::file_size(log), intact);

    DurableCacheStore recovered;
    ASSERT_TRUE(recovered.open(opts, error)) << error;
    EXPECT_EQ(recovered.recovery().log_records, 8u);
    EXPECT_GT(recovered.recovery().truncated_bytes, 0u);
    ASSERT_EQ(recovered.entries().size(), 8u);
    for (uint64_t key = 1; key <= 8; ++key) {
        EXPECT_TRUE(recovered.entries().at(key) == sample_report(key));
    }
    // The tear is physically gone: the log is back to its intact size and a
    // further reopen recovers cleanly with nothing left to truncate.
    EXPECT_EQ(fs::file_size(log), intact);
    DurableCacheStore again;
    ASSERT_TRUE(again.open(opts, error)) << error;
    EXPECT_EQ(again.recovery().truncated_bytes, 0u);
    EXPECT_EQ(again.entries().size(), 8u);
}

TEST(DurableCacheStore, CorruptTailFrameIsDroppedPrefixSurvives) {
    const std::string dir = fresh_dir("durable_corrupt_tail");
    DurableStoreOptions opts;
    opts.dir = dir;
    std::string error;
    uint64_t size_after_three = 0;
    {
        DurableCacheStore store;
        ASSERT_TRUE(store.open(opts, error)) << error;
        for (uint64_t key = 1; key <= 3; ++key) {
            ASSERT_TRUE(store.append(key, sample_report(key), error)) << error;
        }
        size_after_three = store.log_bytes();
        ASSERT_TRUE(store.append(4, sample_report(4), error)) << error;
    }

    // Flip one payload byte inside the last record: its CRC no longer
    // matches, so recovery must drop it (and only it).
    const fs::path log = fs::path(dir) / "cache.log";
    std::string bytes = read_file(log);
    ASSERT_GT(bytes.size(), size_after_three + 8);
    bytes[size_after_three + 9] ^= 0x5a;
    std::ofstream(log, std::ios::binary).write(bytes.data(),
                                               static_cast<std::streamsize>(bytes.size()));

    DurableCacheStore recovered;
    ASSERT_TRUE(recovered.open(opts, error)) << error;
    EXPECT_EQ(recovered.recovery().log_records, 3u);
    EXPECT_GT(recovered.recovery().truncated_bytes, 0u);
    ASSERT_EQ(recovered.entries().size(), 3u);
    EXPECT_EQ(recovered.entries().count(4), 0u);
}

TEST(DurableCacheStore, CompactionFoldsLogIntoSnapshot) {
    const std::string dir = fresh_dir("durable_compact");
    DurableStoreOptions opts;
    opts.dir = dir;
    opts.compact_log_bytes = 0;  // manual compaction only
    std::string error;
    {
        DurableCacheStore store;
        ASSERT_TRUE(store.open(opts, error)) << error;
        for (uint64_t key = 1; key <= 12; ++key) {
            ASSERT_TRUE(store.append(key, sample_report(key), error)) << error;
        }
        const uint64_t full_log = store.log_bytes();
        ASSERT_TRUE(store.compact(error)) << error;
        EXPECT_LT(store.log_bytes(), full_log);  // back to just the header
        // Appends after compaction land in the fresh log.
        ASSERT_TRUE(store.append(13, sample_report(13), error)) << error;
    }

    DurableCacheStore recovered;
    ASSERT_TRUE(recovered.open(opts, error)) << error;
    EXPECT_EQ(recovered.recovery().snapshot_entries, 12u);
    EXPECT_EQ(recovered.recovery().log_records, 1u);
    ASSERT_EQ(recovered.entries().size(), 13u);
    for (uint64_t key = 1; key <= 13; ++key) {
        EXPECT_TRUE(recovered.entries().at(key) == sample_report(key));
    }
}

TEST(DurableCacheStore, SnapshotBytesAreInsertionOrderIndependent) {
    // Two stores fed the same entries in different orders compact to
    // byte-identical snapshots: on-disk state is content, not history.
    const std::string dir_a = fresh_dir("durable_det_a");
    const std::string dir_b = fresh_dir("durable_det_b");
    std::string error;
    const auto fill = [&](const std::string& dir, bool reversed) {
        DurableStoreOptions opts;
        opts.dir = dir;
        opts.compact_log_bytes = 0;
        DurableCacheStore store;
        ASSERT_TRUE(store.open(opts, error)) << error;
        for (uint64_t i = 0; i < 10; ++i) {
            const uint64_t key = reversed ? 10 - i : i + 1;
            ASSERT_TRUE(store.append(key, sample_report(key), error)) << error;
        }
        ASSERT_TRUE(store.compact(error)) << error;
    };
    fill(dir_a, false);
    fill(dir_b, true);
    EXPECT_EQ(read_file(fs::path(dir_a) / "cache.snapshot"),
              read_file(fs::path(dir_b) / "cache.snapshot"));
}

TEST(DurableCacheStore, AutoCompactionKeepsLogBounded) {
    const std::string dir = fresh_dir("durable_auto_compact");
    DurableStoreOptions opts;
    opts.dir = dir;
    opts.compact_log_bytes = 512;  // tiny: a few records trip it
    std::string error;
    {
        DurableCacheStore store;
        ASSERT_TRUE(store.open(opts, error)) << error;
        for (uint64_t key = 1; key <= 64; ++key) {
            ASSERT_TRUE(store.append(key, sample_report(key), error)) << error;
        }
        EXPECT_LE(store.log_bytes(), 512u + 1024u);  // bounded, not 64 records deep
    }
    DurableCacheStore recovered;
    ASSERT_TRUE(recovered.open(opts, error)) << error;
    EXPECT_GT(recovered.recovery().snapshot_entries, 0u);
    EXPECT_EQ(recovered.entries().size(), 64u);
}

TEST(DurableCacheStore, MissingDirIsCreatedGarbageLogRecovers) {
    // A data dir that never existed is created; a log holding pure garbage
    // (no valid header) recovers to an empty store, not a refusal.
    const std::string dir = fresh_dir("durable_garbage") + "/nested/deeper";
    DurableStoreOptions opts;
    opts.dir = dir;
    std::string error;
    {
        DurableCacheStore store;
        ASSERT_TRUE(store.open(opts, error)) << error;
        EXPECT_TRUE(store.entries().empty());
    }
    {
        std::ofstream out(fs::path(dir) / "cache.log", std::ios::binary | std::ios::trunc);
        out << "this is not a frame at all";
    }
    DurableCacheStore recovered;
    ASSERT_TRUE(recovered.open(opts, error)) << error;
    EXPECT_TRUE(recovered.entries().empty());
    EXPECT_GT(recovered.recovery().truncated_bytes, 0u);
}

}  // namespace
}  // namespace sdlc
