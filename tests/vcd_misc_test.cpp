// Tests for the VCD writer plus odds and ends not covered elsewhere
// (P2 PGM parsing, Boolean-algebra cross-checks on the simulator).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "image/image.h"
#include "netlist/netlist.h"
#include "netlist/sim.h"
#include "netlist/vcd.h"
#include "util/rng.h"

namespace sdlc {
namespace {

TEST(Vcd, HeaderDeclaresPortsAndScope) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.and_gate(a, b), "y");
    std::ostringstream oss;
    VcdWriter w(oss, nl, "top");
    const std::string s = oss.str();
    EXPECT_NE(s.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(s.find("$scope module top $end"), std::string::npos);
    EXPECT_NE(s.find(" a $end"), std::string::npos);
    EXPECT_NE(s.find(" y $end"), std::string::npos);
    EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, FirstStepDumpsAllThenOnlyChanges) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.not_gate(a), "y");
    std::ostringstream oss;
    VcdWriter w(oss, nl, "top");
    w.step({false});
    w.step({false});  // nothing changes
    w.step({true});   // both nets flip
    EXPECT_EQ(w.steps(), 3u);
    const std::string s = oss.str();
    // Timestep markers present.
    EXPECT_NE(s.find("#0\n"), std::string::npos);
    EXPECT_NE(s.find("#1\n"), std::string::npos);
    EXPECT_NE(s.find("#2\n"), std::string::npos);
    // The #1 section must be empty (between "#1\n" and "#2\n").
    const size_t p1 = s.find("#1\n");
    const size_t p2 = s.find("#2\n");
    EXPECT_EQ(s.substr(p1 + 3, p2 - p1 - 3), "");
}

TEST(Vcd, RejectsWrongInputCount) {
    Netlist nl;
    nl.input("a");
    nl.input("b");
    std::ostringstream oss;
    VcdWriter w(oss, nl, "top");
    EXPECT_THROW(w.step({true}), std::invalid_argument);
}

TEST(Pgm, ParsesP2AsciiFormat) {
    const std::string path = testing::TempDir() + "/sdlc_p2_test.pgm";
    {
        std::ofstream f(path);
        f << "P2\n# a comment line\n3 2\n255\n0 128 255\n10 20 30\n";
    }
    const Image img = load_pgm(path);
    EXPECT_EQ(img.width(), 3);
    EXPECT_EQ(img.height(), 2);
    EXPECT_EQ(img.at(0, 0), 0);
    EXPECT_EQ(img.at(1, 0), 128);
    EXPECT_EQ(img.at(2, 0), 255);
    EXPECT_EQ(img.at(2, 1), 30);
    std::remove(path.c_str());
}

TEST(Pgm, RejectsBadHeader) {
    const std::string path = testing::TempDir() + "/sdlc_bad.pgm";
    {
        std::ofstream f(path);
        f << "P7\n3 2\n255\n";
    }
    EXPECT_THROW(load_pgm(path), std::runtime_error);
    std::remove(path.c_str());
}

// --- Boolean-algebra cross-checks (simulator-level property tests) ---------

TEST(BooleanLaws, DeMorganHoldsOnRandomVectors) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId lhs = nl.not_gate(nl.and_gate(a, b));          // ~(a & b)
    const NetId rhs = nl.or_gate(nl.not_gate(a), nl.not_gate(b));
    const NetId lhs2 = nl.not_gate(nl.or_gate(a, b));          // ~(a | b)
    const NetId rhs2 = nl.and_gate(nl.not_gate(a), nl.not_gate(b));
    Simulator sim(nl);
    Xoshiro256 rng(3);
    for (int pass = 0; pass < 16; ++pass) {
        const std::vector<Simulator::Word> in = {rng.next(), rng.next()};
        sim.run(in);
        EXPECT_EQ(sim.value(lhs), sim.value(rhs));
        EXPECT_EQ(sim.value(lhs2), sim.value(rhs2));
    }
}

TEST(BooleanLaws, XorDecompositionHolds) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId x = nl.xor_gate(a, b);
    const NetId decomposed =
        nl.or_gate(nl.and_gate(a, nl.not_gate(b)), nl.and_gate(nl.not_gate(a), b));
    Simulator sim(nl);
    Xoshiro256 rng(4);
    for (int pass = 0; pass < 16; ++pass) {
        const std::vector<Simulator::Word> in = {rng.next(), rng.next()};
        sim.run(in);
        EXPECT_EQ(sim.value(x), sim.value(decomposed));
    }
}

TEST(BooleanLaws, NandNorDuality) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId nand_gate_net = nl.nand_gate(a, b);
    const NetId via_not = nl.not_gate(nl.and_gate(a, b));
    const NetId nor_gate_net = nl.nor_gate(a, b);
    const NetId via_not2 = nl.not_gate(nl.or_gate(a, b));
    Simulator sim(nl);
    Xoshiro256 rng(5);
    for (int pass = 0; pass < 8; ++pass) {
        const std::vector<Simulator::Word> in = {rng.next(), rng.next()};
        sim.run(in);
        EXPECT_EQ(sim.value(nand_gate_net), sim.value(via_not));
        EXPECT_EQ(sim.value(nor_gate_net), sim.value(via_not2));
    }
}

}  // namespace
}  // namespace sdlc
