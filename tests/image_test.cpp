// Tests for the image substrate: PGM I/O, synthetic scenes, Gaussian kernel
// quantization, convolution with pluggable multipliers and PSNR ordering.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/functional.h"
#include "image/convolve.h"
#include "image/gaussian.h"
#include "image/image.h"
#include "image/synthetic.h"

namespace sdlc {
namespace {

TEST(Image, ConstructionAndAccess) {
    Image img(4, 3, 9);
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.pixel_count(), 12u);
    EXPECT_EQ(img.at(0, 0), 9);
    img.set(2, 1, 77);
    EXPECT_EQ(img.at(2, 1), 77);
    EXPECT_THROW((void)img.at(4, 0), std::out_of_range);
    EXPECT_THROW(Image(0, 5), std::invalid_argument);
}

TEST(Image, ClampedAccessorReplicatesBorder) {
    Image img(2, 2);
    img.set(0, 0, 10);
    img.set(1, 0, 20);
    img.set(0, 1, 30);
    img.set(1, 1, 40);
    EXPECT_EQ(img.at_clamped(-5, -5), 10);
    EXPECT_EQ(img.at_clamped(7, 0), 20);
    EXPECT_EQ(img.at_clamped(0, 9), 30);
    EXPECT_EQ(img.at_clamped(9, 9), 40);
}

TEST(Image, PgmRoundTrip) {
    const Image img = make_scene(37, 23, 5);
    const std::string path = testing::TempDir() + "/sdlc_img_test.pgm";
    save_pgm(img, path);
    const Image back = load_pgm(path);
    EXPECT_EQ(img, back);
    std::remove(path.c_str());
}

TEST(Image, LoadRejectsMissingFile) {
    EXPECT_THROW(load_pgm("/no/such/file.pgm"), std::runtime_error);
}

/// Writes `content` as a PGM file and returns what load_pgm throws for it.
/// Every rejection must be a std::runtime_error carrying the "load_pgm:"
/// prefix and the path — never a bare std::invalid_argument/out_of_range
/// escaping from the header parse.
std::string load_pgm_error(const std::string& name, const std::string& content) {
    const std::string path = testing::TempDir() + "/" + name;
    {
        std::ofstream out(path, std::ios::binary);
        out << content;
    }
    std::string message;
    try {
        (void)load_pgm(path);
    } catch (const std::runtime_error& e) {
        message = e.what();
    } catch (const std::exception& e) {
        ADD_FAILURE() << "wrong exception type for " << name << ": " << e.what();
    }
    std::remove(path.c_str());
    EXPECT_NE(message.find("load_pgm:"), std::string::npos) << name << ": " << message;
    EXPECT_NE(message.find(path), std::string::npos)
        << name << " must carry the file path: " << message;
    return message;
}

TEST(Image, LoadRejectsMalformedHeadersWithPathCarryingErrors) {
    // Junk tokens where integers belong.
    EXPECT_NE(load_pgm_error("junk_width.pgm", "P5\nabc 3\n255\n").find("width"),
              std::string::npos);
    EXPECT_NE(load_pgm_error("junk_height.pgm", "P5\n3 3x\n255\n").find("height"),
              std::string::npos);
    EXPECT_NE(load_pgm_error("junk_maxval.pgm", "P5\n3 3\n2.55\n").find("maxval"),
              std::string::npos);
    // Negative dimensions are junk to the digits-only parse, not a crash.
    EXPECT_NE(load_pgm_error("neg_width.pgm", "P5\n-3 3\n255\n").find("width"),
              std::string::npos);
    // A value that overflows int must not escape as std::out_of_range.
    EXPECT_NE(
        load_pgm_error("huge_width.pgm", "P5\n99999999999999999999 3\n255\n").find("width"),
        std::string::npos);
    // Absurd-but-parseable dimensions are refused before the allocation.
    EXPECT_NE(load_pgm_error("huge_dims.pgm", "P5\n65535 65535\n255\n")
                  .find("exceed supported size"),
              std::string::npos);
    // Truncated headers keep their dedicated message.
    EXPECT_NE(load_pgm_error("truncated.pgm", "P5\n3").find("truncated header"),
              std::string::npos);
    EXPECT_NE(load_pgm_error("empty.pgm", "").find("truncated header"), std::string::npos);
    // Zero dimensions and out-of-range maxval stay rejected.
    load_pgm_error("zero_width.pgm", "P5\n0 3\n255\n\0\0\0");
    load_pgm_error("maxval_range.pgm", "P5\n2 2\n999\n....");
}

TEST(Image, LoadStillAcceptsCommentsAndP2) {
    const std::string path = testing::TempDir() + "/sdlc_img_ok.pgm";
    {
        std::ofstream out(path, std::ios::binary);
        out << "P2\n# a comment\n2 2\n# another\n255\n1 2\n3 4\n";
    }
    const Image img = load_pgm(path);
    EXPECT_EQ(img.width(), 2);
    EXPECT_EQ(img.height(), 2);
    EXPECT_EQ(img.at(0, 0), 1);
    EXPECT_EQ(img.at(1, 1), 4);
    std::remove(path.c_str());
}

TEST(Image, MseAndPsnr) {
    Image a(10, 10, 100);
    Image b(10, 10, 110);
    EXPECT_DOUBLE_EQ(mse(a, b), 100.0);
    EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 100.0), 1e-12);
    EXPECT_TRUE(std::isinf(psnr(a, a)));
    Image c(5, 5);
    EXPECT_THROW((void)mse(a, c), std::invalid_argument);
}

TEST(Synthetic, GeneratorsProduceRequestedSizes) {
    EXPECT_EQ(make_gradient(20, 10).width(), 20);
    EXPECT_EQ(make_checkerboard(16, 16, 4).height(), 16);
    EXPECT_EQ(make_noise(8, 8, 1).pixel_count(), 64u);
    EXPECT_EQ(make_blobs(32, 32, 3, 2).width(), 32);
    EXPECT_EQ(make_scene(200, 200, 3).pixel_count(), 40000u);
}

TEST(Synthetic, DeterministicForSeed) {
    EXPECT_EQ(make_scene(64, 64, 9), make_scene(64, 64, 9));
    EXPECT_NE(make_noise(64, 64, 1), make_noise(64, 64, 2));
}

TEST(Synthetic, SceneHasDynamicRange) {
    const Image img = make_scene(100, 100, 4);
    uint8_t lo = 255, hi = 0;
    for (const uint8_t px : img.pixels()) {
        lo = std::min(lo, px);
        hi = std::max(hi, px);
    }
    EXPECT_LT(lo, 60);
    EXPECT_GT(hi, 180);
}

TEST(Gaussian, KernelMatchesPaperSetup) {
    // 3x3, sigma 1.5, Q0.8: centre weight largest, 4-fold symmetric.
    const FixedKernel k = make_gaussian_kernel(3, 1.5);
    EXPECT_EQ(k.size, 3);
    EXPECT_EQ(k.weights.size(), 9u);
    EXPECT_GT(k.at(1, 1), k.at(0, 0));
    EXPECT_EQ(k.at(0, 0), k.at(2, 2));
    EXPECT_EQ(k.at(0, 1), k.at(2, 1));
    EXPECT_EQ(k.at(1, 0), k.at(1, 2));
    // Quantized weights approximately sum to 256 (Q0.8 unity).
    EXPECT_NEAR(k.weight_sum(), 256, 8);
}

TEST(Gaussian, LargerSigmaFlattensKernel) {
    const FixedKernel narrow = make_gaussian_kernel(3, 0.5);
    const FixedKernel wide = make_gaussian_kernel(3, 5.0);
    EXPECT_GT(narrow.at(1, 1), wide.at(1, 1));
}

TEST(Gaussian, RejectsBadArguments) {
    EXPECT_THROW(make_gaussian_kernel(2, 1.0), std::invalid_argument);
    EXPECT_THROW(make_gaussian_kernel(3, 0.0), std::invalid_argument);
}

TEST(Convolve, IdentityKernelKeepsImage) {
    FixedKernel ident;
    ident.size = 1;
    ident.weights = {255};  // ~unity in Q0.8 after divisor normalization
    const Image img = make_scene(40, 40, 7);
    const Image out = convolve(img, ident, exact_mul8);
    EXPECT_EQ(out, img);
}

TEST(Convolve, BlurSmoothsNoise) {
    const Image img = make_noise(64, 64, 3);
    const Image out = convolve(img, make_gaussian_kernel(3, 1.5), exact_mul8);
    // Neighbour-difference energy must drop substantially after low-pass.
    auto roughness = [](const Image& im) {
        double acc = 0.0;
        for (int y = 0; y < im.height(); ++y) {
            for (int x = 1; x < im.width(); ++x) {
                const double d = static_cast<double>(im.at(x, y)) - im.at(x - 1, y);
                acc += d * d;
            }
        }
        return acc;
    };
    EXPECT_LT(roughness(out), 0.5 * roughness(img));
}

TEST(Convolve, CountsMultiplications) {
    const Image img = make_gradient(10, 10);
    ConvolveStats stats;
    (void)convolve(img, make_gaussian_kernel(3, 1.5), exact_mul8, &stats);
    EXPECT_EQ(stats.multiplications, 100u * 9u);
}

TEST(Convolve, RejectsNullMultiplier) {
    const Image img = make_gradient(4, 4);
    EXPECT_THROW(convolve(img, make_gaussian_kernel(3, 1.5), Mul8Fn{}), std::invalid_argument);
}

TEST(Convolve, ApproximateBlurCloseToExact) {
    // Approximate multipliers must still produce a recognizable blur: PSNR
    // vs the exact blur stays high at depth 2. The multiplier is applied
    // pixel-first (pixel = operand A, weight = operand B), the binding used
    // throughout the Figure 8 reproduction (see EXPERIMENTS.md).
    const Image img = make_scene(100, 100, 11);
    const FixedKernel k = make_gaussian_kernel(3, 1.5);
    const Image exact = convolve(img, k, exact_mul8);

    const ClusterPlan plan2 = ClusterPlan::make(8, 2);
    const Image approx2 = convolve(img, k, [&](uint8_t px, uint8_t w) {
        return static_cast<uint32_t>(sdlc_multiply(plan2, px, w));
    });
    EXPECT_GT(psnr(exact, approx2), 30.0);
}

TEST(Convolve, Depth2QualityDominatesDeeperClusters) {
    // Paper Figure 8: PSNR 50.2 dB (d2) > 39 dB (d3) > 30 dB (d4) on the
    // paper's (undistributed) image. Two facts are image-independent and
    // tested here: depth 2 gives the best quality, and every depth stays
    // above a usability floor. (With this kernel's Q0.8 weights the d3/d4
    // order actually inverts — the edge weight 30 = 0b11110 straddles the
    // depth-3 cluster boundary; analyzed in EXPERIMENTS.md.)
    const Image img = make_scene(200, 200, 1);
    const FixedKernel k = make_gaussian_kernel(3, 1.5);
    const Image exact = convolve(img, k, exact_mul8);
    std::vector<double> quality;
    for (int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const Image approx = convolve(img, k, [&](uint8_t px, uint8_t w) {
            return static_cast<uint32_t>(sdlc_multiply(plan, px, w));
        });
        quality.push_back(psnr(exact, approx));
    }
    EXPECT_GT(quality[0], quality[1]);  // d2 beats d3
    EXPECT_GT(quality[0], quality[2]);  // d2 beats d4
    EXPECT_GT(quality[0], 30.0);
    EXPECT_GT(quality[1], 15.0);
    EXPECT_GT(quality[2], 15.0);
}

}  // namespace
}  // namespace sdlc
