// End-to-end regression of the approximate image pipeline: Gaussian blur
// of a fixed-seed synthetic scene with approximate multipliers must hold a
// committed per-config PSNR window against the exact-multiplier blur.
//
// image_test checks qualitative ordering (d2 beats deeper clusters); this
// suite pins the actual numbers. The whole pipeline is integer arithmetic
// plus one deterministic PSNR computation, so the values are reproducible
// to the last bit on any platform — the window below is drift tolerance
// for *intentional* algorithm changes (which must update the table), not
// for noise. It is also the first test driving the image path through
// MultiplyKernel, the same fast path the DSE error sweep runs on, rather
// than the ClusterPlan interpreter.
#include <gtest/gtest.h>

#include <cmath>

#include "core/functional.h"
#include "core/kernels.h"
#include "image/convolve.h"
#include "image/gaussian.h"
#include "image/synthetic.h"

namespace sdlc {
namespace {

constexpr int kScene = 160;       ///< scene side length
constexpr uint64_t kSeed = 5;     ///< scene generator seed
constexpr double kWindowDb = 0.75;  ///< tolerance around the committed PSNR

Image blur_with(const Image& img, const FixedKernel& k, const MultiplierConfig& config) {
    const MultiplyKernel kernel(config);
    return convolve(img, k, [&](uint8_t px, uint8_t w) {
        return static_cast<uint32_t>(kernel(px, w));
    });
}

TEST(ImageRegression, ApproximateBlurPsnrMatchesCommittedBounds) {
    const Image img = make_scene(kScene, kScene, kSeed);
    const FixedKernel k = make_gaussian_kernel(3, 1.5);
    const Image exact = convolve(img, k, exact_mul8);

    // Measured on the committed pipeline (width 8, scene 160x160 seed 5,
    // 3x3 sigma-1.5 kernel, pixel-first operand binding).
    const struct {
        MultiplierVariant variant;
        int depth;
        double psnr_db;
    } expected[] = {
        {MultiplierVariant::kSdlc, 2, 35.5766},
        {MultiplierVariant::kSdlc, 3, 16.8775},
        {MultiplierVariant::kSdlc, 4, 25.7425},
        {MultiplierVariant::kCompensated, 2, 38.2459},
        {MultiplierVariant::kCompensated, 3, 19.2803},
        {MultiplierVariant::kCompensated, 4, 28.8277},
    };
    for (const auto& e : expected) {
        const MultiplierConfig config{8, e.depth, e.variant};
        const double measured = psnr(exact, blur_with(img, k, config));
        EXPECT_NEAR(measured, e.psnr_db, kWindowDb)
            << multiplier_variant_name(e.variant) << " d" << e.depth;
        // Whatever the exact number, the blur must stay usable — a floor
        // that catches catastrophic regressions even if someone widens the
        // window above.
        EXPECT_GT(measured, 15.0);
    }

    // Compensation must help at every depth (it corrects the cluster
    // error it was derived from).
    for (const int depth : {2, 3, 4}) {
        const double plain =
            psnr(exact, blur_with(img, k, {8, depth, MultiplierVariant::kSdlc}));
        const double compensated =
            psnr(exact, blur_with(img, k, {8, depth, MultiplierVariant::kCompensated}));
        EXPECT_GT(compensated, plain) << "depth " << depth;
    }
}

TEST(ImageRegression, AccurateKernelReproducesExactBlur) {
    const Image img = make_scene(kScene, kScene, kSeed);
    const FixedKernel k = make_gaussian_kernel(3, 1.5);
    const Image exact = convolve(img, k, exact_mul8);
    const Image via_kernel = blur_with(img, k, {8, 1, MultiplierVariant::kAccurate});
    EXPECT_EQ(exact, via_kernel);
    EXPECT_TRUE(std::isinf(psnr(exact, via_kernel)));
}

TEST(ImageRegression, KernelPathMatchesInterpreterPath) {
    // The fast MultiplyKernel and the ClusterPlan interpreter must yield
    // pixel-identical blurs — the image-pipeline face of the kernel
    // equivalence the DSE sweep relies on.
    const Image img = make_scene(96, 96, 7);
    const FixedKernel k = make_gaussian_kernel(3, 1.5);
    for (const int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const Image interpreted = convolve(img, k, [&](uint8_t px, uint8_t w) {
            return static_cast<uint32_t>(sdlc_multiply(plan, px, w));
        });
        const Image fast = blur_with(img, k, {8, depth, MultiplierVariant::kSdlc});
        EXPECT_EQ(interpreted, fast) << "depth " << depth;
    }
}

}  // namespace
}  // namespace sdlc
