// Cross-validation of the SDLC netlist generator against the functional
// model: the generated hardware must implement exactly the calibrated
// arithmetic, for every depth, accumulation scheme and remapping mode.
#include <gtest/gtest.h>

#include "core/functional.h"
#include "core/generator.h"
#include "netlist/opt.h"
#include "netlist/sim.h"
#include "tech/sta.h"
#include "util/rng.h"

namespace sdlc {
namespace {

/// gtest parameter names may not contain '-'; map schemes to clean tokens.
std::string scheme_token(AccumulationScheme s) {
    switch (s) {
        case AccumulationScheme::kRowRipple: return "ripple";
        case AccumulationScheme::kWallace: return "wallace";
        case AccumulationScheme::kDadda: return "dadda";
        case AccumulationScheme::kRowFastCpa: return "fastcpa";
    }
    return "unknown";
}

/// Runs `checks` random operand pairs through the netlist and the model.
void expect_netlist_matches_model(const MultiplierNetlist& m, const ClusterPlan& plan,
                                  int checks, uint64_t seed) {
    Xoshiro256 rng(seed);
    const uint64_t mask = (uint64_t{1} << plan.width()) - 1;
    std::vector<uint64_t> as(64), bs(64);
    for (int pass = 0; pass < (checks + 63) / 64; ++pass) {
        for (int i = 0; i < 64; ++i) {
            as[i] = rng.next() & mask;
            bs[i] = rng.next() & mask;
        }
        const auto prods = simulate_batch(m, as, bs);
        for (int i = 0; i < 64; ++i) {
            ASSERT_EQ(prods[i], sdlc_multiply(plan, as[i], bs[i]))
                << m.label << ": " << as[i] << "*" << bs[i];
        }
    }
}

class SdlcNetlistExhaustive
    : public testing::TestWithParam<std::tuple<int, int, AccumulationScheme>> {};

TEST_P(SdlcNetlistExhaustive, MatchesFunctionalModelEverywhere) {
    const auto [width, depth, scheme] = GetParam();
    SdlcOptions opts;
    opts.depth = depth;
    opts.scheme = scheme;
    const MultiplierNetlist m = build_sdlc_multiplier(width, opts);
    const ClusterPlan plan = ClusterPlan::make(width, depth);

    const uint64_t side = uint64_t{1} << width;
    std::vector<uint64_t> as, bs;
    auto flush = [&] {
        if (as.empty()) return;
        const auto prods = simulate_batch(m, as, bs);
        for (size_t i = 0; i < as.size(); ++i) {
            ASSERT_EQ(prods[i], sdlc_multiply(plan, as[i], bs[i]))
                << m.label << ": " << as[i] << "*" << bs[i];
        }
        as.clear();
        bs.clear();
    };
    for (uint64_t a = 0; a < side; ++a) {
        for (uint64_t b = 0; b < side; ++b) {
            as.push_back(a);
            bs.push_back(b);
            if (as.size() == 64) flush();
        }
    }
    flush();
}

INSTANTIATE_TEST_SUITE_P(
    SmallWidths, SdlcNetlistExhaustive,
    testing::Combine(testing::Values(4, 6), testing::Values(2, 3, 4),
                     testing::Values(AccumulationScheme::kRowRipple,
                                     AccumulationScheme::kWallace,
                                     AccumulationScheme::kDadda,
                                     AccumulationScheme::kRowFastCpa)),
    [](const auto& pinfo) {
        return "w" + std::to_string(std::get<0>(pinfo.param)) + "_d" +
               std::to_string(std::get<1>(pinfo.param)) + "_" +
               scheme_token(std::get<2>(pinfo.param));
    });

TEST(SdlcNetlist, EightBitExhaustiveDepth2) {
    SdlcOptions opts;
    const MultiplierNetlist m = build_sdlc_multiplier(8, opts);
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    std::vector<uint64_t> as(64), bs(64);
    for (uint64_t a = 0; a < 256; ++a) {
        for (uint64_t block = 0; block < 4; ++block) {
            for (uint64_t i = 0; i < 64; ++i) {
                as[i] = a;
                bs[i] = block * 64 + i;
            }
            const auto prods = simulate_batch(m, as, bs);
            for (uint64_t i = 0; i < 64; ++i) {
                ASSERT_EQ(prods[i], sdlc_multiply(plan, a, bs[i])) << a << "*" << bs[i];
            }
        }
    }
}

class SdlcNetlistRandom : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SdlcNetlistRandom, MatchesFunctionalModelOnRandomOperands) {
    const auto [width, depth] = GetParam();
    SdlcOptions opts;
    opts.depth = depth;
    const MultiplierNetlist m = build_sdlc_multiplier(width, opts);
    expect_netlist_matches_model(m, ClusterPlan::make(width, depth), 512,
                                 0x5eed + static_cast<uint64_t>(width * 10 + depth));
}

INSTANTIATE_TEST_SUITE_P(WiderWidths, SdlcNetlistRandom,
                         testing::Combine(testing::Values(12, 16, 24, 32),
                                          testing::Values(2, 3, 4)),
                         [](const auto& pinfo) {
                             return "w" + std::to_string(std::get<0>(pinfo.param)) + "_d" +
                                    std::to_string(std::get<1>(pinfo.param));
                         });

TEST(SdlcNetlist, NoRemapAblationIsFunctionallyIdentical) {
    for (int depth : {2, 3}) {
        SdlcOptions remap, noremap;
        remap.depth = noremap.depth = depth;
        noremap.commutative_remapping = false;
        const MultiplierNetlist m1 = build_sdlc_multiplier(8, remap);
        const MultiplierNetlist m2 = build_sdlc_multiplier(8, noremap);
        Xoshiro256 rng(77);
        std::vector<uint64_t> as(64), bs(64);
        for (int pass = 0; pass < 16; ++pass) {
            for (int i = 0; i < 64; ++i) {
                as[i] = rng.next() & 0xff;
                bs[i] = rng.next() & 0xff;
            }
            EXPECT_EQ(simulate_batch(m1, as, bs), simulate_batch(m2, as, bs));
        }
    }
}

TEST(SdlcNetlist, RemappingShortensRowRippleDepth) {
    SdlcOptions remap, noremap;
    noremap.commutative_remapping = false;
    const MultiplierNetlist m1 = build_sdlc_multiplier(16, remap);
    const MultiplierNetlist m2 = build_sdlc_multiplier(16, noremap);
    EXPECT_LT(logic_depth(m1.net), logic_depth(m2.net));
}

TEST(SdlcNetlist, UsesFullAndArrayLikeAccurateDesign) {
    // The paper keeps all N^2 AND partial products; compression adds ORs.
    const MultiplierNetlist m = build_sdlc_multiplier(8, {});
    const auto hist = m.net.kind_histogram();
    EXPECT_GE(hist[static_cast<size_t>(GateKind::kAnd)], 64u);
    EXPECT_GT(hist[static_cast<size_t>(GateKind::kOr)], 0u);
}

TEST(SdlcNetlist, MatrixCriticalColumnHalvedAtDepth2) {
    // Paper Figure 3: the critical column height drops from N to N/2.
    Netlist nl;
    const OperandPorts ports = make_operand_ports(nl, 8);
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    const BitMatrix matrix = build_sdlc_matrix(nl, ports.a, ports.b, plan);
    EXPECT_EQ(matrix.max_height(), 4);

    Netlist nl_acc;
    const OperandPorts ports_acc = make_operand_ports(nl_acc, 8);
    const BitMatrix acc = build_sdlc_matrix(nl_acc, ports_acc.a, ports_acc.b,
                                            ClusterPlan::make(8, 1));
    EXPECT_EQ(acc.max_height(), 8);
}

TEST(SdlcNetlist, DepthReducesMatrixHeightFurther) {
    Netlist nl;
    const OperandPorts ports = make_operand_ports(nl, 8);
    int prev = 100;
    for (int depth : {2, 3, 4}) {
        Netlist scratch;
        const OperandPorts p = make_operand_ports(scratch, 8);
        const BitMatrix m = build_sdlc_matrix(scratch, p.a, p.b, ClusterPlan::make(8, depth));
        EXPECT_LT(m.max_height(), prev);
        prev = m.max_height();
    }
}

TEST(SdlcNetlist, OptimizedNetlistStaysEquivalent) {
    SdlcOptions opts;
    opts.depth = 3;
    MultiplierNetlist m = build_sdlc_multiplier(8, opts);
    const OptResult r = optimize(m.net);
    const ClusterPlan plan = ClusterPlan::make(8, 3);

    Simulator sim(r.netlist);
    Xoshiro256 rng(3);
    for (int pass = 0; pass < 8; ++pass) {
        std::vector<uint64_t> as(64), bs(64);
        for (int i = 0; i < 64; ++i) {
            as[i] = rng.next() & 0xff;
            bs[i] = rng.next() & 0xff;
        }
        // Pack inputs in port order (a bits then b bits).
        std::vector<uint64_t> words(r.netlist.inputs().size(), 0);
        for (int bitpos = 0; bitpos < 8; ++bitpos) {
            uint64_t wa = 0, wb = 0;
            for (int lane = 0; lane < 64; ++lane) {
                wa |= ((as[lane] >> bitpos) & 1u) << lane;
                wb |= ((bs[lane] >> bitpos) & 1u) << lane;
            }
            words[static_cast<size_t>(bitpos)] = wa;
            words[static_cast<size_t>(8 + bitpos)] = wb;
        }
        sim.run(words);
        const auto outs = sim.output_words();
        for (int lane = 0; lane < 64; ++lane) {
            uint64_t prod = 0;
            for (size_t bitpos = 0; bitpos < outs.size(); ++bitpos) {
                prod |= ((outs[bitpos] >> lane) & 1u) << bitpos;
            }
            ASSERT_EQ(prod, sdlc_multiply(plan, as[lane], bs[lane]));
        }
    }
}

TEST(SdlcNetlist, LabelDescribesConfiguration) {
    SdlcOptions opts;
    opts.depth = 3;
    opts.scheme = AccumulationScheme::kDadda;
    const MultiplierNetlist m = build_sdlc_multiplier(8, opts);
    EXPECT_NE(m.label.find("d=3"), std::string::npos);
    EXPECT_NE(m.label.find("dadda"), std::string::npos);
}

TEST(SdlcNetlist, WideWidthsBuildAndSimulate) {
    // 64- and 128-bit versions must construct and produce P' <= P.
    for (int width : {64, 128}) {
        SdlcOptions opts;
        const MultiplierNetlist m = build_sdlc_multiplier(width, opts);
        EXPECT_EQ(m.p_bits.size(), static_cast<size_t>(2 * width));
        Xoshiro256 rng(11);
        const uint64_t a_lo = rng.next(), a_hi = width > 64 ? rng.next() : 0;
        const uint64_t b_lo = rng.next(), b_hi = width > 64 ? rng.next() : 0;
        const U256 approx = simulate_one_wide(m, a_lo, a_hi, b_lo, b_hi);
        const U256 exact = mul_128(a_lo, width > 64 ? a_hi : 0, b_lo, width > 64 ? b_hi : 0);
        EXPECT_FALSE(less(exact, approx)) << width;  // approx <= exact
    }
}

}  // namespace
}  // namespace sdlc
