// Unit tests for the structural optimizer: rule coverage plus random
// equivalence checking (the optimizer must never change functionality).
#include <gtest/gtest.h>

#include "netlist/netlist.h"
#include "netlist/opt.h"
#include "netlist/sim.h"
#include "util/rng.h"

namespace sdlc {
namespace {

/// Checks functional equivalence on `passes` x 64 random vectors.
void expect_equivalent(const Netlist& a, const Netlist& b, int passes = 8,
                       uint64_t seed = 1234) {
    ASSERT_EQ(a.inputs().size(), b.inputs().size());
    ASSERT_EQ(a.outputs().size(), b.outputs().size());
    Simulator sa(a), sb(b);
    Xoshiro256 rng(seed);
    std::vector<Simulator::Word> in(a.inputs().size());
    for (int p = 0; p < passes; ++p) {
        for (auto& w : in) w = rng.next();
        sa.run(in);
        sb.run(in);
        const auto oa = sa.output_words();
        const auto ob = sb.output_words();
        for (size_t i = 0; i < oa.size(); ++i) {
            ASSERT_EQ(oa[i], ob[i]) << "output " << a.outputs()[i].name;
        }
    }
}

TEST(Optimizer, FoldsConstantAnd) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId c0 = nl.constant(false);
    nl.mark_output(nl.and_gate(a, c0), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.logic_gate_count(), 0u);
    EXPECT_EQ(r.netlist.gate(r.netlist.outputs()[0].net).kind, GateKind::kConst0);
}

TEST(Optimizer, AndWithOneIsPassthrough) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.and_gate(a, nl.constant(true)), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.logic_gate_count(), 0u);
    EXPECT_EQ(r.netlist.outputs()[0].net, r.netlist.inputs()[0]);
}

TEST(Optimizer, DoubleNotEliminated) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.not_gate(nl.not_gate(a)), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.outputs()[0].net, r.netlist.inputs()[0]);
}

TEST(Optimizer, XorSelfIsZero) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.xor_gate(a, a), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.gate(r.netlist.outputs()[0].net).kind, GateKind::kConst0);
}

TEST(Optimizer, XnorSelfIsOne) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.xnor_gate(a, a), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.gate(r.netlist.outputs()[0].net).kind, GateKind::kConst1);
}

TEST(Optimizer, OrSelfIsPassthrough) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.or_gate(a, a), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.outputs()[0].net, r.netlist.inputs()[0]);
}

TEST(Optimizer, NandSelfIsNot) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.nand_gate(a, a), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.gate(r.netlist.outputs()[0].net).kind, GateKind::kNot);
}

TEST(Optimizer, CseMergesCommutedDuplicates) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId x = nl.and_gate(a, b);
    const NetId y = nl.and_gate(b, a);  // same function, operands swapped
    nl.mark_output(nl.or_gate(x, y), "y");
    const OptResult r = optimize(nl);
    // AND(a,b) == AND(b,a) merged; OR(x,x) collapses to x.
    EXPECT_EQ(r.netlist.logic_gate_count(), 1u);
    EXPECT_GE(r.stats.merged + r.stats.folded, 1u);
}

TEST(Optimizer, RemovesDeadGates) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.or_gate(a, b);  // dead
    nl.mark_output(nl.and_gate(a, b), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.logic_gate_count(), 1u);
    EXPECT_EQ(r.stats.dead, 1u);
}

TEST(Optimizer, BufIsTransparent) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.mark_output(nl.buf_gate(a), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.logic_gate_count(), 0u);
}

TEST(Optimizer, PreservesInterface) {
    Netlist nl;
    const NetId a = nl.input("first");
    const NetId b = nl.input("second");
    nl.mark_output(nl.and_gate(a, b), "out0");
    nl.mark_output(nl.xor_gate(a, b), "out1");
    const OptResult r = optimize(nl);
    ASSERT_EQ(r.netlist.inputs().size(), 2u);
    EXPECT_EQ(r.netlist.input_name(0), "first");
    EXPECT_EQ(r.netlist.input_name(1), "second");
    ASSERT_EQ(r.netlist.outputs().size(), 2u);
    EXPECT_EQ(r.netlist.outputs()[0].name, "out0");
    EXPECT_EQ(r.netlist.outputs()[1].name, "out1");
}

TEST(Optimizer, KeepsUnusedInputs) {
    Netlist nl;
    nl.input("unused");
    const NetId b = nl.input("used");
    nl.mark_output(nl.not_gate(b), "y");
    const OptResult r = optimize(nl);
    EXPECT_EQ(r.netlist.inputs().size(), 2u);
}

/// Random netlist generator for equivalence fuzzing.
Netlist random_netlist(uint64_t seed, int n_inputs, int n_gates) {
    Xoshiro256 rng(seed);
    Netlist nl;
    std::vector<NetId> pool;
    for (int i = 0; i < n_inputs; ++i) pool.push_back(nl.input("i" + std::to_string(i)));
    pool.push_back(nl.constant(false));
    pool.push_back(nl.constant(true));
    const GateKind kinds[] = {GateKind::kBuf,  GateKind::kNot, GateKind::kAnd,
                              GateKind::kOr,   GateKind::kNand, GateKind::kNor,
                              GateKind::kXor,  GateKind::kXnor};
    for (int i = 0; i < n_gates; ++i) {
        const GateKind k = kinds[rng.below(8)];
        const NetId a = pool[rng.below(pool.size())];
        const NetId b = pool[rng.below(pool.size())];
        pool.push_back(gate_arity(k) == 1 ? nl.add_gate(k, a) : nl.add_gate(k, a, b));
    }
    for (int i = 0; i < 4; ++i) {
        nl.mark_output(pool[pool.size() - 1 - static_cast<size_t>(i)],
                       "o" + std::to_string(i));
    }
    return nl;
}

class OptimizerFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerFuzz, RandomNetlistsStayEquivalent) {
    const Netlist nl = random_netlist(GetParam(), 6, 120);
    const OptResult r = optimize(nl);
    expect_equivalent(nl, r.netlist, 8, GetParam() ^ 0x1111);
    EXPECT_LE(r.netlist.logic_gate_count(), nl.logic_gate_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzz,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u));

TEST(Optimizer, IndividualPassesCanBeDisabled) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId x = nl.and_gate(a, nl.constant(true));
    nl.or_gate(a, a);  // dead gate
    nl.mark_output(x, "y");

    OptOptions keep_dead;
    keep_dead.remove_dead = false;
    const OptResult r = optimize(nl, keep_dead);
    EXPECT_EQ(r.stats.dead, 0u);

    OptOptions no_fold;
    no_fold.fold_constants = false;
    no_fold.simplify_identities = false;
    const OptResult r2 = optimize(nl, no_fold);
    // The AND with constant true survives.
    EXPECT_GE(r2.netlist.logic_gate_count(), 1u);
}

}  // namespace
}  // namespace sdlc
