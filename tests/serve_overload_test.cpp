// Overload behavior of the bounded request queue: with load-shedding
// enabled a full queue answers deterministic `overloaded` rejections, no
// response is ever lost or duplicated, and shutdown still drains every
// admitted request — including under many concurrent submitting clients.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/sink.h"
#include "util/json_parse.h"

namespace sdlc::serve {
namespace {

std::string tiny_sweep_line(const std::string& id) {
    return "{\"id\": \"" + id +
           "\", \"spec\": {\"width\": 4, \"variants\": [\"sdlc\"], \"schemes\": [\"ripple\"]}}";
}

/// Counts terminal events and remembers error codes, and can gate the very
/// first write so a test pins the service's one worker in place: the
/// worker blocks inside run_sweep's first event until release().
class GateSink final : public ResponseSink {
public:
    explicit GateSink(bool gated = false) : gated_(gated) {}

    void write_line(const std::string& line) override {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (gated_ && !released_) {
                entered_ = true;
                entered_cv_.notify_all();
                release_cv_.wait(lock, [&] { return released_; });
            }
            lines_.push_back(line);
            if (line.find("\"event\": \"done\"") != std::string::npos) ++done_;
        }
        done_cv_.notify_all();
    }

    /// Blocks until the gated first write has started (the worker is
    /// provably inside this request).
    void wait_entered() {
        std::unique_lock<std::mutex> lock(mutex_);
        ASSERT_TRUE(entered_cv_.wait_for(lock, std::chrono::seconds(60),
                                         [&] { return entered_; }));
    }

    void release() {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            released_ = true;
        }
        release_cv_.notify_all();
    }

    std::vector<std::string> wait_done(size_t n = 1) {
        std::unique_lock<std::mutex> lock(mutex_);
        EXPECT_TRUE(done_cv_.wait_for(lock, std::chrono::seconds(60),
                                      [&] { return done_ >= n; }));
        return lines_;
    }

    [[nodiscard]] size_t done_count() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return done_;
    }

    [[nodiscard]] std::vector<std::string> lines() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return lines_;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable entered_cv_;
    std::condition_variable release_cv_;
    std::condition_variable done_cv_;
    std::vector<std::string> lines_;
    size_t done_ = 0;
    bool gated_;
    bool entered_ = false;
    bool released_ = false;
};

std::string error_code(const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
        JsonValue e;
        if (!json_parse(line, e)) continue;
        const JsonValue* kind = e.find("event");
        if (kind != nullptr && kind->is_string() && kind->string == "error") {
            return e.find("code")->string;
        }
    }
    return "";
}

TEST(ServeOverload, FullQueueRejectsDeterministically) {
    ServiceOptions opts;
    opts.request_workers = 1;
    opts.queue_capacity = 2;
    opts.reject_when_full = true;
    SweepService service(opts);

    // Pin the single worker inside a gated request; the queue is now
    // provably empty and the worker provably busy.
    auto blocker = std::make_shared<GateSink>(/*gated=*/true);
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("blocker"), blocker));
    blocker->wait_entered();

    // Fill the queue to capacity: both admitted without blocking.
    auto queued_a = std::make_shared<GateSink>();
    auto queued_b = std::make_shared<GateSink>();
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("qa"), queued_a));
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("qb"), queued_b));

    // Every further submission is shed, deterministically, without
    // blocking: error `overloaded` plus a failed done, service stays up.
    const int shed = 5;
    std::vector<std::shared_ptr<GateSink>> rejected;
    for (int i = 0; i < shed; ++i) {
        rejected.push_back(std::make_shared<GateSink>());
        EXPECT_TRUE(service.submit_line(tiny_sweep_line("r" + std::to_string(i)),
                                        rejected.back()));
        const auto events = rejected.back()->wait_done();
        ASSERT_EQ(events.size(), 2u);
        EXPECT_EQ(error_code(events), "overloaded");
    }
    EXPECT_EQ(service.stats().overloaded, static_cast<uint64_t>(shed));
    EXPECT_EQ(service.stats().accepted, 3u);

    // Control requests are never shed or blocked: a stats request against
    // the same full queue is answered inline, immediately — the overload
    // incident stays observable while it is happening.
    auto stats_sink = std::make_shared<GateSink>();
    EXPECT_TRUE(service.submit_line("{\"id\": \"st\", \"type\": \"stats\"}", stats_sink));
    const auto stats_events = stats_sink->wait_done();
    EXPECT_EQ(error_code(stats_events), "") << "control requests must not be shed";
    EXPECT_NE(stats_events.back().find("\"ok\": true"), std::string::npos);

    // Unblock: everything admitted still completes exactly once.
    blocker->release();
    blocker->wait_done();
    queued_a->wait_done();
    queued_b->wait_done();
    EXPECT_EQ(blocker->done_count(), 1u);
    EXPECT_EQ(queued_a->done_count(), 1u);
    EXPECT_EQ(queued_b->done_count(), 1u);
    EXPECT_EQ(service.stats().completed, 3u);
    EXPECT_EQ(service.stats().overloaded, static_cast<uint64_t>(shed));
}

TEST(ServeOverload, RejectedDuplicateIdKeepsRunningSweepCancellable) {
    ServiceOptions opts;
    opts.request_workers = 1;
    opts.queue_capacity = 1;
    opts.reject_when_full = true;
    SweepService service(opts);

    // Sweep "X" is running (pinned); the queue is filled by another sweep.
    auto running = std::make_shared<GateSink>(/*gated=*/true);
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("X"), running));
    running->wait_entered();
    auto filler = std::make_shared<GateSink>();
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("fill"), filler));

    // A duplicate-id submission is shed — and must NOT strip the running
    // sweep of its cancel flag on the way out.
    auto duplicate = std::make_shared<GateSink>();
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("X"), duplicate));
    ASSERT_EQ(error_code(duplicate->wait_done()), "overloaded");

    // Cancelling "X" still finds the running sweep (cancels are handled
    // inline, so the full queue is no obstacle).
    auto cancel = std::make_shared<GateSink>();
    ASSERT_TRUE(service.submit_line(
        "{\"id\": \"c\", \"type\": \"cancel\", \"target\": \"X\"}", cancel));
    const auto cancel_events = cancel->wait_done();
    EXPECT_EQ(error_code(cancel_events), "") << "cancel must still find the running sweep";
    EXPECT_NE(cancel_events.back().find("\"ok\": true"), std::string::npos);

    running->release();
    ASSERT_EQ(error_code(running->wait_done()), "cancelled");
    filler->wait_done();
    EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(ServeOverload, ConcurrentClientsLoseNoResponsesAndDrainOnShutdown) {
    ServiceOptions opts;
    opts.request_workers = 2;
    opts.queue_capacity = 4;
    opts.reject_when_full = true;
    SweepService service(opts);

    // Several clients flood the tiny queue concurrently. Every submission
    // must get exactly one terminal done event — completed or rejected —
    // and a shutdown issued mid-flood must still drain whatever was
    // admitted.
    constexpr int kClients = 4;
    constexpr int kPerClient = 12;
    std::vector<std::vector<std::shared_ptr<GateSink>>> sinks(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&service, &sinks, c] {
            for (int i = 0; i < kPerClient; ++i) {
                auto sink = std::make_shared<GateSink>();
                sinks[c].push_back(sink);
                const std::string id = "c" + std::to_string(c) + "-" + std::to_string(i);
                if (!service.submit_line(tiny_sweep_line(id), sink)) break;  // shutting down
            }
        });
    }
    for (std::thread& t : clients) t.join();
    service.shutdown();  // drain everything admitted, join workers

    uint64_t dones = 0;
    uint64_t overloaded = 0;
    uint64_t completed = 0;
    uint64_t submissions = 0;
    for (const auto& client_sinks : sinks) {
        for (const auto& sink : client_sinks) {
            ++submissions;
            // Exactly one terminal event per submission: never zero (lost),
            // never two (duplicated).
            ASSERT_EQ(sink->done_count(), 1u);
            ++dones;
            const std::string code = error_code(sink->lines());
            if (code == "overloaded") {
                ++overloaded;
            } else if (code.empty()) {
                ++completed;
            } else {
                FAIL() << "unexpected terminal code " << code;
            }
        }
    }
    EXPECT_EQ(dones, submissions);
    EXPECT_EQ(completed + overloaded, submissions);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.overloaded, overloaded);
    EXPECT_EQ(stats.completed, completed);
    EXPECT_EQ(stats.accepted, completed);
    EXPECT_GT(completed, 0u) << "the flood must not shed every request";
}

TEST(ServeOverload, ShutdownMidFloodStillTerminatesEverySubmission) {
    ServiceOptions opts;
    opts.request_workers = 1;
    opts.queue_capacity = 2;
    opts.reject_when_full = true;
    SweepService service(opts);

    std::atomic<bool> stop{false};
    std::vector<std::shared_ptr<GateSink>> sinks;
    std::mutex sinks_mutex;
    std::thread flood([&] {
        for (int i = 0; !stop.load() && i < 10000; ++i) {
            auto sink = std::make_shared<GateSink>();
            {
                std::lock_guard<std::mutex> lock(sinks_mutex);
                sinks.push_back(sink);
            }
            if (!service.submit_line(tiny_sweep_line("f" + std::to_string(i)), sink)) break;
        }
    });
    // Let some submissions land, then pull the plug while the flood runs.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    service.request_shutdown();
    stop.store(true);
    flood.join();
    service.shutdown();

    std::lock_guard<std::mutex> lock(sinks_mutex);
    for (const auto& sink : sinks) {
        EXPECT_EQ(sink->done_count(), 1u)
            << "every submission gets exactly one terminal event, even across shutdown";
        const std::string code = error_code(sink->lines());
        EXPECT_TRUE(code.empty() || code == "overloaded" || code == "shutting_down") << code;
    }
}

}  // namespace
}  // namespace sdlc::serve
