// Prometheus metrics export: text-format shape (HELP/TYPE per family,
// cumulative histogram buckets, +Inf == count), histogram bucketing, the
// `metrics` request verb, and the new overload/deadline counters flowing
// through ServiceStats into the exposition.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "serve/metrics.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/sink.h"
#include "util/json_parse.h"

namespace sdlc::serve {
namespace {

class RecordingSink final : public ResponseSink {
public:
    void write_line(const std::string& line) override {
        std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(line);
        if (line.find("\"event\": \"done\"") != std::string::npos) ++done_;
        cv_.notify_all();
    }

    std::vector<std::string> wait_done(size_t n = 1) {
        std::unique_lock<std::mutex> lock(mutex_);
        EXPECT_TRUE(cv_.wait_for(lock, std::chrono::seconds(60), [&] { return done_ >= n; }));
        return lines_;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::string> lines_;
    size_t done_ = 0;
};

TEST(LatencyHistogramTest, ObservationsLandInTheRightBucket) {
    LatencyHistogram hist;
    hist.observe(0.0005);  // <= 0.001: first bucket
    hist.observe(0.001);   // boundary: still the first bucket (le is inclusive)
    hist.observe(0.003);   // (0.0025, 0.005]
    hist.observe(9.0);     // (5, 10]
    hist.observe(60.0);    // beyond every bound: +Inf bucket
    EXPECT_EQ(hist.counts[0], 2u);
    EXPECT_EQ(hist.counts[2], 1u);
    EXPECT_EQ(hist.counts[LatencyHistogram::kBounds.size() - 1], 1u);
    EXPECT_EQ(hist.counts.back(), 1u);
    EXPECT_EQ(hist.count, 5u);
    EXPECT_NEAR(hist.sum, 0.0005 + 0.001 + 0.003 + 9.0 + 60.0, 1e-9);
}

TEST(PrometheusMetrics, RendersWellFormedExposition) {
    ServiceStats stats;
    stats.accepted = 12;
    stats.completed = 7;
    stats.failed = 1;
    stats.cancelled = 2;
    stats.deadline_exceeded = 1;
    stats.overloaded = 1;
    stats.points_evaluated = 420;
    stats.cache_hits = 100;
    stats.cache_misses = 49;
    stats.cache_entries = 49;
    stats.remote_cache.enabled = true;
    stats.remote_cache.hits = 31;
    stats.remote_cache.misses = 18;
    stats.remote_cache.errors = 2;
    stats.remote_cache.timeouts = 1;
    stats.remote_cache.puts = 18;
    stats.queue_depth = 3;
    stats.in_flight = 2;
    stats.latency.observe(0.004);
    stats.latency.observe(0.004);
    stats.latency.observe(99.0);

    const std::string text = prometheus_metrics(stats);

    // Every non-comment line is `name{labels} value` or `name value`; every
    // metric family is preceded by HELP and TYPE comments.
    std::istringstream lines(text);
    std::string line;
    std::string last_comment_metric;
    size_t samples = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty()) << "no blank lines in the exposition";
        if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
            last_comment_metric = line.substr(7, line.find(' ', 7) - 7);
            continue;
        }
        ++samples;
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string name = line.substr(0, line.find_first_of("{ "));
        EXPECT_EQ(name.rfind(kMetricsPrefix, 0), 0u) << "metric not namespaced: " << line;
        // The sample belongs to the family announced by the comments
        // directly above it (histogram samples append _bucket/_sum/_count).
        EXPECT_EQ(name.rfind(last_comment_metric, 0), 0u) << line;
    }
    EXPECT_GT(samples, 15u);

    // Spot-check the counters.
    EXPECT_NE(text.find("sdlc_serve_requests_accepted_total 12\n"), std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_requests_total{outcome=\"completed\"} 7\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_requests_total{outcome=\"deadline_exceeded\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_requests_total{outcome=\"overloaded\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_hw_cache_lookups_total{result=\"hit\"} 100\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_remote_cache_requests_total{result=\"hit\"} 31\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_remote_cache_requests_total{result=\"timeout\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_remote_cache_puts_total 18\n"), std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_remote_cache_enabled 1\n"), std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_queue_depth 3\n"), std::string::npos);

    // Histogram: cumulative buckets, `+Inf` equals _count, _sum matches.
    EXPECT_NE(text.find("sdlc_serve_request_duration_seconds_bucket{le=\"0.005\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_request_duration_seconds_bucket{le=\"10\"} 2\n"),
              std::string::npos)
        << "buckets are cumulative: the 99 s outlier is only in +Inf";
    EXPECT_NE(text.find("sdlc_serve_request_duration_seconds_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("sdlc_serve_request_duration_seconds_count 3\n"), std::string::npos);
}

TEST(ServeMetrics, MetricsRequestVerbAnswersPrometheusText) {
    SweepService service;

    // Run one tiny sweep so the counters are nonzero.
    auto sweep_sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(
        "{\"id\": \"s\", \"spec\": {\"width\": 4, \"variants\": [\"sdlc\"],"
        " \"schemes\": [\"ripple\"]}}",
        sweep_sink));
    sweep_sink->wait_done();

    auto sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line("{\"id\": \"m\", \"type\": \"metrics\"}", sink));
    const auto events = sink->wait_done();
    ASSERT_EQ(events.size(), 2u);

    JsonValue event;
    std::string error;
    ASSERT_TRUE(json_parse(events[0], event, &error)) << error;
    EXPECT_EQ(event.find("event")->string, "metrics");
    EXPECT_EQ(event.find("format")->string, "prometheus");
    const std::string& text = event.find("data")->string;
    EXPECT_NE(text.find("sdlc_serve_requests_total{outcome=\"completed\"} 1\n"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("sdlc_serve_points_evaluated_total 3\n"), std::string::npos) << text;
    EXPECT_NE(text.find("sdlc_serve_request_duration_seconds_count 1\n"), std::string::npos)
        << text;
    EXPECT_NE(events[1].find("\"ok\": true"), std::string::npos);

    // The stats event carries the same new counters in JSON form.
    auto stats_sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line("{\"id\": \"st\", \"type\": \"stats\"}", stats_sink));
    const auto stats_events = stats_sink->wait_done();
    JsonValue stats_event_json;
    ASSERT_TRUE(json_parse(stats_events[0], stats_event_json, &error)) << error;
    const JsonValue* requests = stats_event_json.find("requests");
    ASSERT_NE(requests, nullptr);
    ASSERT_NE(requests->find("deadline_exceeded"), nullptr);
    ASSERT_NE(requests->find("overloaded"), nullptr);
}

}  // namespace
}  // namespace sdlc::serve
