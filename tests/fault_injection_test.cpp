// Deterministic fault injection: the --fault spec grammar, the injector's
// firing rules, and — the part that matters — end-to-end proof that every
// injected failure mode (severed connection, short write, corrupted
// response, stalled peer) degrades the remote cache tier to local
// synthesis with a byte-identical sweep export.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dse/cost_cache.h"
#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "dse/remote_cache.h"
#include "dse/sweep.h"
#include "serve/cache_tier.h"
#include "serve/fault.h"
#include "serve/socket.h"
#include "serve/transport.h"

namespace sdlc {
namespace {

using serve::CacheTierOptions;
using serve::CacheTierService;
using serve::FaultAction;
using serve::FaultInjector;
using serve::FaultKind;
using serve::FaultSpec;
using serve::parse_fault_specs;
using serve::serve_listener;
using serve::UnixSocketServer;

// ------------------------------------------------------------ spec grammar ----

TEST(FaultSpecs, ParsesSingleAndCombinedSpecs) {
    std::vector<FaultSpec> specs;
    std::string error;
    ASSERT_TRUE(parse_fault_specs("disconnect-after:40", specs, error)) << error;
    ASSERT_EQ(specs.size(), 1u);
    EXPECT_EQ(specs[0].kind, FaultKind::kDisconnectAfter);
    EXPECT_EQ(specs[0].arg, 40);

    ASSERT_TRUE(parse_fault_specs("stall:5,corrupt-frame:3,short-write:7", specs, error))
        << error;
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].kind, FaultKind::kStall);
    EXPECT_EQ(specs[1].kind, FaultKind::kCorruptFrame);
    EXPECT_EQ(specs[2].kind, FaultKind::kShortWrite);
    EXPECT_EQ(specs[2].arg, 7);
}

TEST(FaultSpecs, RejectsMalformedSpecs) {
    std::vector<FaultSpec> specs;
    std::string error;
    for (const char* bad : {"", "bogus:1", "stall", "stall:", "stall:0", "stall:-5",
                            "stall:abc", "disconnect-after:1,", ",stall:1",
                            "disconnect-after:999999999999999"}) {
        error.clear();
        EXPECT_FALSE(parse_fault_specs(bad, specs, error)) << "accepted: " << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

// -------------------------------------------------------------- firing rules ----

TEST(FaultInjectorRules, DisconnectAfterFiresOnEveryLaterWrite) {
    std::vector<FaultSpec> specs;
    std::string error;
    ASSERT_TRUE(parse_fault_specs("disconnect-after:2", specs, error));
    FaultInjector injector(specs);
    EXPECT_FALSE(injector.next_action().disconnect);  // write 1
    EXPECT_FALSE(injector.next_action().disconnect);  // write 2
    EXPECT_TRUE(injector.next_action().disconnect);   // write 3
    EXPECT_TRUE(injector.next_action().disconnect);   // and every one after
    EXPECT_EQ(injector.writes(), 4u);
}

TEST(FaultInjectorRules, ShortWriteFiresExactlyOnce) {
    std::vector<FaultSpec> specs;
    std::string error;
    ASSERT_TRUE(parse_fault_specs("short-write:3", specs, error));
    FaultInjector injector(specs);
    for (int i = 1; i <= 2; ++i) {
        const FaultAction a = injector.next_action();
        EXPECT_FALSE(a.short_write);
        EXPECT_FALSE(a.disconnect);
    }
    const FaultAction hit = injector.next_action();
    EXPECT_TRUE(hit.short_write);
    EXPECT_TRUE(hit.disconnect);  // a torn line must also tear the stream
    const FaultAction after = injector.next_action();
    EXPECT_FALSE(after.short_write);
}

TEST(FaultInjectorRules, CorruptFrameFiresEveryNth) {
    std::vector<FaultSpec> specs;
    std::string error;
    ASSERT_TRUE(parse_fault_specs("corrupt-frame:2", specs, error));
    FaultInjector injector(specs);
    for (int serial = 1; serial <= 6; ++serial) {
        EXPECT_EQ(injector.next_action().corrupt, serial % 2 == 0) << serial;
    }
}

TEST(FaultInjectorRules, StallAppliesToEveryWriteAndCombines) {
    std::vector<FaultSpec> specs;
    std::string error;
    ASSERT_TRUE(parse_fault_specs("stall:15,corrupt-frame:2", specs, error));
    FaultInjector injector(specs);
    const FaultAction first = injector.next_action();
    EXPECT_EQ(first.stall_ms, 15);
    EXPECT_FALSE(first.corrupt);
    const FaultAction second = injector.next_action();
    EXPECT_EQ(second.stall_ms, 15);
    EXPECT_TRUE(second.corrupt);
}

TEST(FaultInjectorRules, CorruptLineNeverParsesButStaysOneLine) {
    const std::string line = R"({"ok": true, "hit": false})";
    const std::string mangled = FaultInjector::corrupt_line(line);
    EXPECT_EQ(mangled.size(), line.size());
    EXPECT_EQ(mangled.find('\n'), std::string::npos);
    EXPECT_EQ(mangled.substr(0, 8), "########");
}

// ------------------------------------------------- daemon-level degradation ----

/// In-process cache daemon with an injector wired into its serving stack —
/// exactly what `cache_tool --fault` constructs.
class FaultyDaemon {
public:
    FaultyDaemon(const std::string& path, const std::string& fault_spec,
                 const CacheTierOptions& opts = {})
        : listener_(path), service_(opts) {
        if (!fault_spec.empty()) {
            std::vector<FaultSpec> specs;
            std::string error;
            if (!parse_fault_specs(fault_spec, specs, error)) {
                throw std::invalid_argument("bad fault spec: " + error);
            }
            injector_ = std::make_shared<FaultInjector>(std::move(specs));
        }
        thread_ = std::thread([this, opts] {
            serve_listener(listener_, service_, opts.max_request_bytes, injector_);
        });
    }

    ~FaultyDaemon() { stop(); }

    void stop() {
        if (thread_.joinable()) {
            listener_.close();
            thread_.join();
        }
    }

    [[nodiscard]] CacheDaemonStats stats() const { return service_.stats(); }

private:
    UnixSocketServer listener_;
    CacheTierService service_;
    std::shared_ptr<FaultInjector> injector_;
    std::thread thread_;
};

std::string export_of(const std::vector<DesignPoint>& points, const SweepStats& stats) {
    const ParetoResult pareto = pareto_analysis(objective_matrix(points));
    return dse_to_json(points, pareto.rank, stats, default_objectives());
}

/// Runs the reference sweep (no cache tier) and the same sweep through a
/// remote tier against `daemon_sock`, and asserts byte-identical exports.
/// Returns the faulted run's remote counters.
RemoteCacheCounters assert_byte_identical_under_fault(const std::string& daemon_sock,
                                                      int timeout_ms = 250) {
    const SweepSpec spec = SweepSpec::for_width(4);
    EvalOptions base;
    base.threads = 2;
    SweepStats ref_stats;
    const std::vector<DesignPoint> reference = evaluate_sweep(spec, base, &ref_stats);

    RemoteCacheOptions ropts;
    ropts.peers = {"unix:" + daemon_sock};
    ropts.timeout_ms = timeout_ms;
    CostCache local;
    RemoteCostCache remote(local, ropts);
    EvalOptions faulted = base;
    faulted.hw_cache = &remote;
    SweepStats faulted_stats;
    const std::vector<DesignPoint> points = evaluate_sweep(spec, faulted, &faulted_stats);

    EXPECT_EQ(export_of(reference, ref_stats), export_of(points, faulted_stats));
    // The deterministic cache replay is topology-independent too.
    EXPECT_EQ(faulted_stats.hw_cache_hits, ref_stats.hw_cache_hits);
    EXPECT_EQ(faulted_stats.hw_cache_misses, ref_stats.hw_cache_misses);
    return remote.remote_counters();
}

TEST(FaultInjectionIntegration, DisconnectAfterDegradesByteIdentically) {
    const std::string sock = testing::TempDir() + "/sdlc_fault_disc.sock";
    FaultyDaemon daemon(sock, "disconnect-after:3");
    const RemoteCacheCounters c = assert_byte_identical_under_fault(sock);
    EXPECT_GE(c.errors, 1u);  // the severed connection was noticed...
    EXPECT_LE(c.hits, 3u);    // ...and at most the pre-fault responses landed
}

TEST(FaultInjectionIntegration, ShortWriteDegradesByteIdentically) {
    const std::string sock = testing::TempDir() + "/sdlc_fault_short.sock";
    FaultyDaemon daemon(sock, "short-write:2");
    const RemoteCacheCounters c = assert_byte_identical_under_fault(sock);
    EXPECT_GE(c.errors, 1u);
}

TEST(FaultInjectionIntegration, CorruptFrameDegradesByteIdentically) {
    const std::string sock = testing::TempDir() + "/sdlc_fault_corrupt.sock";
    // Every single response is mangled: the client must reject each one as
    // a protocol error without ever trusting a byte of it.
    FaultyDaemon daemon(sock, "corrupt-frame:1");
    const RemoteCacheCounters c = assert_byte_identical_under_fault(sock);
    EXPECT_GE(c.errors, 1u);
    EXPECT_EQ(c.hits, 0u);
}

TEST(FaultInjectionIntegration, StallDegradesViaTimeoutByteIdentically) {
    const std::string sock = testing::TempDir() + "/sdlc_fault_stall.sock";
    FaultyDaemon daemon(sock, "stall:400");
    const RemoteCacheCounters c = assert_byte_identical_under_fault(sock, /*timeout_ms=*/30);
    EXPECT_GE(c.timeouts, 1u);
    EXPECT_EQ(c.hits, 0u);
}

TEST(FaultInjectionIntegration, FaultFreeInjectorChangesNothing) {
    // A daemon with no fault spec behaves exactly like DaemonHarness: the
    // tier works, and the export still matches the reference.
    const std::string sock = testing::TempDir() + "/sdlc_fault_none.sock";
    FaultyDaemon daemon(sock, "");
    const RemoteCacheCounters c = assert_byte_identical_under_fault(sock);
    EXPECT_EQ(c.errors, 0u);
    EXPECT_EQ(c.timeouts, 0u);
    EXPECT_GE(c.puts, 1u);
}

}  // namespace
}  // namespace sdlc
