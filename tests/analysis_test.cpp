// Tests for the closed-form error model: the analytic MED must equal the
// exhaustively simulated MED (it is an exact expectation, not an
// approximation), and the depth-2 analytic error rate must match exhaustive
// and published ground truths digit-for-digit.
#include <gtest/gtest.h>

#include "analysis/expected_error.h"
#include "core/functional.h"
#include "error/evaluate.h"

namespace sdlc {
namespace {

TEST(NoAdjacentOnes, MatchesBruteForce) {
    for (int width : {4, 6, 8, 10}) {
        for (int top = 0; top < width; ++top) {
            uint64_t count = 0;
            for (uint64_t v = 0; v < (uint64_t{1} << width); ++v) {
                bool ok = true;
                for (int i = 1; i <= top; ++i) {
                    if (((v >> i) & 1) && ((v >> (i - 1)) & 1)) {
                        ok = false;
                        break;
                    }
                }
                count += ok;
            }
            const double expect =
                static_cast<double>(count) / static_cast<double>(uint64_t{1} << width);
            EXPECT_NEAR(no_adjacent_ones_probability(width, top), expect, 1e-15)
                << width << " " << top;
        }
    }
}

TEST(NoAdjacentOnes, TrivialAndInvalidArguments) {
    EXPECT_DOUBLE_EQ(no_adjacent_ones_probability(8, -1), 1.0);
    EXPECT_THROW((void)no_adjacent_ones_probability(8, 8), std::invalid_argument);
}

class AnalyticVsExhaustive : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AnalyticVsExhaustive, MedIsExact) {
    const auto [width, depth] = GetParam();
    const ClusterPlan plan = ClusterPlan::make(width, depth);
    const ErrorMetrics sim = exhaustive_metrics(
        width, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
    const AnalyticError ana = analyze_expected_error(plan);
    // The analytic MED is an exact expectation; the exhaustive mean must
    // agree to floating-point accumulation error.
    EXPECT_NEAR(ana.med, sim.med, sim.med * 1e-10 + 1e-12) << width << " d" << depth;
    EXPECT_NEAR(ana.nmed, sim.nmed, sim.nmed * 1e-10 + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AnalyticVsExhaustive,
                         testing::Combine(testing::Values(4, 6, 8), testing::Values(2, 3, 4)),
                         [](const auto& pinfo) {
                             return "w" + std::to_string(std::get<0>(pinfo.param)) + "_d" +
                                    std::to_string(std::get<1>(pinfo.param));
                         });

TEST(AnalyticErrorRate, MatchesExhaustiveDepth2) {
    for (int width : {4, 6, 8, 10}) {
        const ClusterPlan plan = ClusterPlan::make(width, 2);
        const ErrorMetrics sim = exhaustive_metrics(
            width, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
        EXPECT_NEAR(analytic_error_rate_depth2(width), sim.error_rate, 1e-12) << width;
    }
}

TEST(AnalyticErrorRate, MatchesPaperTableII) {
    // Paper Table II ER column (4-12 bit rows are exhaustive ground truth).
    EXPECT_NEAR(analytic_error_rate_depth2(4) * 100.0, 19.53, 0.005);
    EXPECT_NEAR(analytic_error_rate_depth2(6) * 100.0, 34.96, 0.005);
    EXPECT_NEAR(analytic_error_rate_depth2(8) * 100.0, 49.11, 0.005);
    EXPECT_NEAR(analytic_error_rate_depth2(12) * 100.0, 70.68, 0.005);
    // 16-bit: our exhaustive ground truth (see EXPERIMENTS.md).
    EXPECT_NEAR(analytic_error_rate_depth2(16) * 100.0, 83.85, 0.005);
}

TEST(AnalyticNmed, MatchesExhaustiveGroundTruths) {
    // 12- and 16-bit NMED from exhaustive sweeps (12-bit matches the paper).
    const AnalyticError a12 = analyze_expected_error(ClusterPlan::make(12, 2));
    EXPECT_NEAR(a12.nmed, 0.000952, 5e-7);
    const AnalyticError a16 = analyze_expected_error(ClusterPlan::make(16, 2));
    EXPECT_NEAR(a16.nmed, 0.000243, 5e-7);
}

TEST(Analytic, PredictsBeyondSimulationReach) {
    // The model extends to widths where exhaustive simulation is impossible;
    // basic sanity: NMED keeps falling with width, ER keeps rising, and both
    // stay in (0,1).
    double prev_nmed = 1.0, prev_er = 0.0;
    for (int width : {8, 16, 32, 64, 128}) {
        const AnalyticError a = analyze_expected_error(ClusterPlan::make(width, 2));
        EXPECT_GT(a.nmed, 0.0);
        EXPECT_LT(a.nmed, prev_nmed) << width;
        ASSERT_TRUE(a.error_rate.has_value());
        EXPECT_GT(*a.error_rate, prev_er) << width;
        EXPECT_LT(*a.error_rate, 1.0);
        prev_nmed = a.nmed;
        prev_er = *a.error_rate;
    }
}

TEST(Analytic, DeeperClustersRaiseMed) {
    for (int width : {8, 16}) {
        double prev = 0.0;
        for (int depth : {2, 3, 4}) {
            const double med = analytic_med(ClusterPlan::make(width, depth));
            EXPECT_GT(med, prev) << width << " d" << depth;
            prev = med;
        }
    }
}

TEST(Analytic, NoErrorRateForDeeperPlans) {
    const AnalyticError a = analyze_expected_error(ClusterPlan::make(8, 3));
    EXPECT_FALSE(a.error_rate.has_value());
    EXPECT_GT(a.med, 0.0);
}

TEST(Analytic, AccuratePlanHasZeroError) {
    const AnalyticError a = analyze_expected_error(ClusterPlan::make(8, 1));
    EXPECT_DOUBLE_EQ(a.med, 0.0);
    EXPECT_DOUBLE_EQ(a.nmed, 0.0);
}

}  // namespace
}  // namespace sdlc
