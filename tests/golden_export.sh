#!/usr/bin/env bash
# Golden-file regression for dse_tool's export formats: the JSON and CSV
# exports of the canonical width-4 sweep must byte-match the fixtures
# committed under tests/golden/. Catches export format drift (field
# renames, number formatting, row-order changes) locally in ctest instead
# of only in the CI serve smoke.
#
# The fixtures are legitimate to regenerate ONLY when the export format
# changes on purpose:
#   dse_tool --width 4 --json tests/golden/dse_w4.json --csv tests/golden/dse_w4.csv
# Usage: golden_export.sh /path/to/dse_tool /path/to/tests/golden
set -u

dse="${1:?usage: golden_export.sh /path/to/dse_tool /path/to/golden_dir}"
golden="${2:?usage: golden_export.sh /path/to/dse_tool /path/to/golden_dir}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

"$dse" --width 4 --json "$workdir/out.json" --csv "$workdir/out.csv" >/dev/null || {
    echo "FAIL: width-4 sweep failed" >&2
    exit 1
}

failures=0
for kind in json csv; do
    if cmp -s "$golden/dse_w4.$kind" "$workdir/out.$kind"; then
        echo "ok: $kind export matches golden fixture"
    else
        echo "FAIL: $kind export drifted from tests/golden/dse_w4.$kind:" >&2
        diff "$golden/dse_w4.$kind" "$workdir/out.$kind" | head -20 >&2
        failures=$((failures + 1))
    fi
done
exit "$failures"
