// Tests for the fast-path kernel dispatch layer: registry behavior and,
// most importantly, bit-exact equivalence between every kernel path and the
// reference ClusterPlan interpreter / ApproxMultiplier software model.
#include <gtest/gtest.h>

#include <vector>

#include "api/approx_multiplier.h"
#include "baselines/truncated.h"
#include "core/functional.h"
#include "core/kernels.h"
#include "util/rng.h"

namespace sdlc {
namespace {

std::vector<MultiplierVariant> all_variants() {
    return {MultiplierVariant::kAccurate, MultiplierVariant::kSdlc,
            MultiplierVariant::kCompensated};
}

/// Compares kernel vs facade over the full operand square.
void expect_exhaustive_equivalence(const MultiplierConfig& cfg) {
    const ApproxMultiplier mul(cfg);
    const MultiplyKernel kernel(cfg);
    const uint64_t side = uint64_t{1} << cfg.width;
    for (uint64_t a = 0; a < side; ++a) {
        for (uint64_t b = 0; b < side; ++b) {
            ASSERT_EQ(kernel(a, b), mul.multiply(a, b))
                << mul.describe() << " path=" << kernel.name() << " a=" << a << " b=" << b;
        }
    }
}

/// Compares kernel vs facade on a reproducible random operand stream.
void expect_sampled_equivalence(const MultiplierConfig& cfg, uint64_t samples) {
    const ApproxMultiplier mul(cfg);
    const MultiplyKernel kernel(cfg);
    Xoshiro256 rng(0x5eed ^ (static_cast<uint64_t>(cfg.width) << 8) ^
                   static_cast<uint64_t>(cfg.depth));
    const uint64_t mask = (uint64_t{1} << cfg.width) - 1;
    for (uint64_t i = 0; i < samples; ++i) {
        const uint64_t a = rng.next() & mask;
        const uint64_t b = rng.next() & mask;
        ASSERT_EQ(kernel(a, b), mul.multiply(a, b))
            << mul.describe() << " path=" << kernel.name() << " a=" << a << " b=" << b;
    }
}

// -------------------------------------------------------------- registry ----

TEST(KernelRegistry, AccurateAndDepth1ShareTheExactKernel) {
    const MultiplyKernelFn accurate =
        find_multiply_kernel({8, 1, MultiplierVariant::kAccurate});
    ASSERT_NE(accurate, nullptr);
    EXPECT_EQ(accurate(11, 13), 143u);
    // Depth 1 means no compression for both approximate variants.
    EXPECT_EQ(find_multiply_kernel({8, 1, MultiplierVariant::kSdlc}), accurate);
    EXPECT_EQ(find_multiply_kernel({8, 1, MultiplierVariant::kCompensated}), accurate);
    // The accurate variant ignores its depth knob.
    EXPECT_EQ(find_multiply_kernel({8, 5, MultiplierVariant::kAccurate}), accurate);
}

TEST(KernelRegistry, Depth2GetsTheFast2BitTrick) {
    for (const int width : {4, 8, 16, 32}) {
        const MultiplyKernelFn fn = find_multiply_kernel({width, 2, MultiplierVariant::kSdlc});
        ASSERT_NE(fn, nullptr) << width;
        const uint64_t mask = (uint64_t{1} << width) - 1;
        Xoshiro256 rng(7);
        for (int i = 0; i < 1000; ++i) {
            const uint64_t a = rng.next() & mask;
            const uint64_t b = rng.next() & mask;
            EXPECT_EQ(fn(a, b), sdlc_multiply_fast2(width, a, b));
        }
    }
}

TEST(KernelRegistry, PlannedConfigsReturnNull) {
    EXPECT_EQ(find_multiply_kernel({8, 3, MultiplierVariant::kSdlc}), nullptr);
    EXPECT_EQ(find_multiply_kernel({8, 2, MultiplierVariant::kCompensated}), nullptr);
    EXPECT_STREQ(multiply_kernel_name({8, 3, MultiplierVariant::kSdlc}), "planned");
    EXPECT_STREQ(multiply_kernel_name({8, 2, MultiplierVariant::kSdlc}), "sdlc-fast2");
    EXPECT_STREQ(multiply_kernel_name({8, 1, MultiplierVariant::kSdlc}), "accurate");
}

TEST(KernelRegistry, OutOfRangeWidthsReturnNull) {
    EXPECT_EQ(find_multiply_kernel({1, 1, MultiplierVariant::kAccurate}), nullptr);
    EXPECT_EQ(find_multiply_kernel({33, 2, MultiplierVariant::kSdlc}), nullptr);
}

TEST(KernelRegistry, SchemeDoesNotAffectDispatch) {
    // The accumulation scheme shapes hardware, never the software product.
    for (const AccumulationScheme s :
         {AccumulationScheme::kRowRipple, AccumulationScheme::kWallace,
          AccumulationScheme::kDadda, AccumulationScheme::kRowFastCpa}) {
        EXPECT_EQ(find_multiply_kernel({8, 2, MultiplierVariant::kSdlc, s}),
                  find_multiply_kernel({8, 2, MultiplierVariant::kSdlc}));
    }
}

TEST(MultiplyKernelClass, RejectsUnbuildableConfigs) {
    EXPECT_THROW(MultiplyKernel({40, 2, MultiplierVariant::kSdlc}), std::invalid_argument);
    EXPECT_THROW(MultiplyKernel({8, 9, MultiplierVariant::kSdlc}), std::invalid_argument);
}

TEST(MultiplyKernelClass, SpecializedFlagMatchesRegistry) {
    EXPECT_TRUE(MultiplyKernel({8, 2, MultiplierVariant::kSdlc}).specialized());
    EXPECT_FALSE(MultiplyKernel({8, 3, MultiplierVariant::kSdlc}).specialized());
    EXPECT_FALSE(MultiplyKernel({8, 2, MultiplierVariant::kCompensated}).specialized());
}

TEST(MultiplyKernelClass, ErrorDistanceMatchesFacade) {
    const MultiplierConfig cfg{8, 3, MultiplierVariant::kSdlc};
    const ApproxMultiplier mul(cfg);
    const MultiplyKernel kernel(cfg);
    Xoshiro256 rng(3);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t a = rng.next() & 0xff, b = rng.next() & 0xff;
        EXPECT_EQ(kernel.error_distance(a, b), mul.error_distance(a, b));
    }
}

// ----------------------------------------------------------- equivalence ----

TEST(KernelEquivalence, ExhaustiveDispatchableConfigsUpToWidth10) {
    // Every configuration the registry backs with a stateless kernel.
    for (int width = 2; width <= 10; ++width) {
        for (const MultiplierVariant v : all_variants()) {
            for (int depth = 1; depth <= (v == MultiplierVariant::kAccurate ? 1 : 2);
                 ++depth) {
                const MultiplierConfig cfg{width, depth, v};
                if (find_multiply_kernel(cfg) == nullptr) continue;
                expect_exhaustive_equivalence(cfg);
            }
        }
    }
}

TEST(KernelEquivalence, ExhaustiveEveryDepthAtSmallWidths) {
    // The planned (strength-reduced) path against the interpreter for every
    // cluster depth and both approximate variants.
    for (int width = 2; width <= 7; ++width) {
        for (int depth = 1; depth <= width; ++depth) {
            expect_exhaustive_equivalence({width, depth, MultiplierVariant::kSdlc});
            expect_exhaustive_equivalence({width, depth, MultiplierVariant::kCompensated});
        }
    }
}

TEST(KernelEquivalence, SampledWideConfigs) {
    for (const int width : {9, 12, 16, 24, 32}) {
        for (const int depth : {2, 3, 4, width / 2}) {
            if (depth < 1 || depth > width) continue;
            expect_sampled_equivalence({width, depth, MultiplierVariant::kSdlc}, 20000);
            expect_sampled_equivalence({width, depth, MultiplierVariant::kCompensated}, 20000);
        }
    }
}

// -------------------------------------------------------------- truncated ----

TEST(TruncatedKernel, ExhaustiveEquivalenceWidth8AllCuts) {
    const int width = 8;
    for (int cut = 0; cut < 2 * width; ++cut) {
        const MultiplyKernelFn fn = find_truncated_kernel(cut);
        ASSERT_NE(fn, nullptr) << cut;
        for (uint64_t a = 0; a < 256; ++a) {
            for (uint64_t b = 0; b < 256; ++b) {
                ASSERT_EQ(fn(a, b), truncated_multiply(width, cut, a, b))
                    << "cut=" << cut << " a=" << a << " b=" << b;
                ASSERT_EQ(truncated_multiply_fast(width, cut, a, b),
                          truncated_multiply(width, cut, a, b));
            }
        }
    }
}

TEST(TruncatedKernel, OutOfRangeCutReturnsNull) {
    EXPECT_EQ(find_truncated_kernel(-1), nullptr);
    EXPECT_EQ(find_truncated_kernel(64), nullptr);
}

}  // namespace
}  // namespace sdlc
