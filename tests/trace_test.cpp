// Distributed-tracing subsystem (obs/trace.h): id codecs, deterministic
// span-id streams, ScopedSpan nesting, concurrent recording, the spans
// wire codec, the request/response trace fields, and — the headline — a
// byte-exact golden Chrome-trace JSON of a fixed-seed width-4 sweep traced
// with an injectable clock, plus the invariant that tracing never changes
// sweep results.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dse/evaluator.h"
#include "dse/sweep.h"
#include "obs/trace.h"
#include "serve/protocol.h"
#include "util/json_parse.h"

namespace sdlc::obs {
namespace {

TEST(TraceIdCodecTest, RoundTripsAndRejectsGarbage) {
    const uint64_t hi = 0x0123456789abcdefULL;
    const uint64_t lo = 0xfedcba9876543210ULL;
    const std::string hex = trace_id_hex(hi, lo);
    EXPECT_EQ(hex, "0123456789abcdeffedcba9876543210");
    uint64_t rhi = 0;
    uint64_t rlo = 0;
    ASSERT_TRUE(parse_trace_id_hex(hex, rhi, rlo));
    EXPECT_EQ(rhi, hi);
    EXPECT_EQ(rlo, lo);

    EXPECT_EQ(span_id_hex(0), "0000000000000000");
    uint64_t span = 1;
    ASSERT_TRUE(parse_span_id_hex("00000000000000ff", span));
    EXPECT_EQ(span, 0xffu);

    // Strict: exact length, lowercase hex only, no 0x prefix.
    EXPECT_FALSE(parse_trace_id_hex("0123", rhi, rlo));
    EXPECT_FALSE(parse_trace_id_hex("0123456789ABCDEFfedcba9876543210", rhi, rlo));
    EXPECT_FALSE(parse_trace_id_hex("0x23456789abcdeffedcba987654321000", rhi, rlo));
    EXPECT_FALSE(parse_span_id_hex("00000000000000f", span));
    EXPECT_FALSE(parse_span_id_hex("00000000000000fg", span));
}

TEST(SpanRecorderTest, IdStreamIsDeterministicPerSeedAndNeverZero) {
    SpanRecorder a("serve", 42);
    SpanRecorder b("serve", 42);
    SpanRecorder c("serve", 43);
    std::vector<uint64_t> ids_a;
    std::vector<uint64_t> ids_b;
    bool any_differs = false;
    for (int i = 0; i < 64; ++i) {
        ids_a.push_back(a.new_span_id());
        ids_b.push_back(b.new_span_id());
        EXPECT_NE(ids_a.back(), 0u);
        if (c.new_span_id() != ids_a.back()) any_differs = true;
    }
    EXPECT_EQ(ids_a, ids_b);
    EXPECT_TRUE(any_differs);
    EXPECT_EQ(std::set<uint64_t>(ids_a.begin(), ids_a.end()).size(), ids_a.size());
}

TEST(ScopedSpanTest, NestsParentsAndOrdersTake) {
    // Deterministic clock: each call returns the next integer second.
    auto tick = std::make_shared<std::atomic<int>>(0);
    SpanRecorder rec("serve", 7, [tick] { return static_cast<double>((*tick)++); });
    TraceContext root;
    root.trace_hi = 0x1111;
    root.trace_lo = 0x2222;
    root.span_id = 0;
    root.valid = true;

    ScopedSpan outer(&rec, root, "enumerate");
    ASSERT_TRUE(outer.active());
    EXPECT_EQ(outer.context().trace_hi, root.trace_hi);
    EXPECT_NE(outer.context().span_id, 0u);
    {
        ScopedSpan inner(&rec, outer.context(), "kernel_eval");
        ASSERT_TRUE(inner.active());
        EXPECT_NE(inner.context().span_id, outer.context().span_id);
    }
    outer.stop();
    outer.stop();  // idempotent

    const std::vector<Span> spans = rec.take();
    ASSERT_EQ(spans.size(), 2u);
    // take() sorts by (start_s, span_id): outer started at t=0, inner at t=1.
    EXPECT_EQ(spans[0].name, "enumerate");
    EXPECT_EQ(spans[0].parent_id, 0u);
    EXPECT_EQ(spans[0].tier, "serve");
    EXPECT_EQ(spans[0].start_s, 0.0);
    EXPECT_EQ(spans[0].dur_s, 3.0);  // t=0 .. t=3
    EXPECT_EQ(spans[1].name, "kernel_eval");
    EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
    EXPECT_EQ(spans[1].start_s, 1.0);
    EXPECT_EQ(spans[1].dur_s, 1.0);  // t=1 .. t=2
    EXPECT_TRUE(rec.take().empty());  // drained
}

TEST(ScopedSpanTest, InertWithoutRecorderOrValidContext) {
    SpanRecorder rec("serve");
    const TraceContext untraced;  // valid == false
    ScopedSpan no_ctx(&rec, untraced, "enumerate");
    EXPECT_FALSE(no_ctx.active());
    EXPECT_FALSE(no_ctx.context().valid);
    TraceContext traced;
    traced.valid = true;
    ScopedSpan no_rec(nullptr, traced, "enumerate");
    EXPECT_FALSE(no_rec.active());
    no_ctx.stop();
    no_rec.stop();
    EXPECT_TRUE(rec.take().empty());
}

TEST(SpanRecorderTest, ConcurrentWorkersRecordEverySpanWithUniqueIds) {
    SpanRecorder rec("serve", 99);
    TraceContext root;
    root.valid = true;
    constexpr int kThreads = 8;
    constexpr int kSpansPerThread = 200;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&rec, &root] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                ScopedSpan span(&rec, root, "kernel_eval");
            }
        });
    }
    for (std::thread& w : workers) w.join();

    const std::vector<Span> spans = rec.take();
    ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads) * kSpansPerThread);
    std::set<uint64_t> ids;
    for (size_t i = 0; i < spans.size(); ++i) {
        ids.insert(spans[i].span_id);
        EXPECT_EQ(spans[i].parent_id, 0u);
        if (i > 0) {
            // take() contract: sorted by (start_s, span_id).
            const bool ordered = spans[i - 1].start_s < spans[i].start_s ||
                                 (spans[i - 1].start_s == spans[i].start_s &&
                                  spans[i - 1].span_id < spans[i].span_id);
            EXPECT_TRUE(ordered) << "span " << i << " out of order";
        }
    }
    EXPECT_EQ(ids.size(), spans.size());
}

TEST(ScopedBindingTest, NestsAndRestores) {
    EXPECT_EQ(current_binding().recorder, nullptr);
    SpanRecorder rec("cache");
    TraceContext ctx;
    ctx.valid = true;
    ctx.span_id = 0xabc;
    {
        ScopedBinding outer(&rec, ctx);
        EXPECT_EQ(current_binding().recorder, &rec);
        EXPECT_EQ(current_binding().ctx.span_id, 0xabcu);
        {
            ScopedBinding inner(nullptr, TraceContext{});
            EXPECT_EQ(current_binding().recorder, nullptr);
        }
        EXPECT_EQ(current_binding().recorder, &rec);
    }
    EXPECT_EQ(current_binding().recorder, nullptr);
}

std::vector<Span> wire_round_trip(const std::vector<Span>& spans) {
    const std::string wire = spans_wire_json(spans);
    JsonValue parsed;
    std::string error;
    EXPECT_TRUE(json_parse(wire, parsed, &error)) << error;
    std::vector<Span> out;
    EXPECT_TRUE(parse_spans_wire(parsed, out, &error)) << error;
    return out;
}

TEST(SpansWireTest, RoundTripsEveryField) {
    std::vector<Span> spans(2);
    spans[0].name = "kernel_eval";
    spans[0].tier = "worker";
    spans[0].span_id = 0x1234;
    spans[0].parent_id = 0x9;
    spans[0].start_s = -0.25;  // synthetic pre-pickup spans sit before the epoch
    spans[0].dur_s = 0.5;
    spans[1].name = "cache_put";
    spans[1].tier = "cache";
    spans[1].span_id = 0xffffffffffffffffULL;
    spans[1].parent_id = 0;
    spans[1].start_s = 1.5;
    spans[1].dur_s = 0.0;

    const std::vector<Span> back = wire_round_trip(spans);
    ASSERT_EQ(back.size(), spans.size());
    for (size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(back[i].name, spans[i].name);
        EXPECT_EQ(back[i].tier, spans[i].tier);
        EXPECT_EQ(back[i].span_id, spans[i].span_id);
        EXPECT_EQ(back[i].parent_id, spans[i].parent_id);
        EXPECT_EQ(back[i].start_s, spans[i].start_s);
        EXPECT_EQ(back[i].dur_s, spans[i].dur_s);
    }
    EXPECT_TRUE(wire_round_trip({}).empty());
}

TEST(SpansWireTest, RejectsMalformedEntries) {
    const char* bad[] = {
        "[1]",                                        // entry not an object
        "[{\"tier\": \"serve\", \"id\": \"0000000000000001\", "
        "\"parent\": \"0000000000000000\", \"start\": 0, \"dur\": 0}]",  // no name
        "[{\"name\": \"a\", \"tier\": \"serve\", \"id\": \"xyz\", "
        "\"parent\": \"0000000000000000\", \"start\": 0, \"dur\": 0}]",  // bad id
        "[{\"name\": \"a\", \"tier\": \"serve\", \"id\": \"0000000000000001\", "
        "\"parent\": \"0000000000000000\", \"start\": \"0\", \"dur\": 0}]",  // start type
    };
    for (const char* wire : bad) {
        JsonValue parsed;
        std::string error;
        ASSERT_TRUE(json_parse(wire, parsed, &error)) << wire;
        std::vector<Span> out;
        EXPECT_FALSE(parse_spans_wire(parsed, out, &error)) << wire;
        EXPECT_FALSE(error.empty());
    }
    // Not an array at all.
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(json_parse("{}", parsed, &error));
    std::vector<Span> out;
    EXPECT_FALSE(parse_spans_wire(parsed, out, &error));
}

TEST(RequestTraceFieldTest, ParsesPropagatesAndStaysAbsentWhenUntraced) {
    serve::SweepRequest request;
    serve::RequestError err;
    const std::string traced =
        "{\"id\": \"r1\", \"type\": \"sweep\", "
        "\"trace\": {\"id\": \"00000000000000ab00000000000000cd\", "
        "\"span\": \"00000000000000ef\"}}";
    ASSERT_TRUE(serve::parse_request(traced, 1 << 20, request, err)) << err.message;
    EXPECT_TRUE(request.trace.valid);
    EXPECT_EQ(request.trace.trace_hi, 0xabu);
    EXPECT_EQ(request.trace.trace_lo, 0xcdu);
    EXPECT_EQ(request.trace.span_id, 0xefu);

    // sweep_request_json(parse_request(x)) reproduces the trace identity —
    // the coordinator propagates exactly what it was given.
    const std::string round = serve::sweep_request_json(request);
    serve::SweepRequest again;
    ASSERT_TRUE(serve::parse_request(round, 1 << 20, again, err)) << err.message;
    EXPECT_TRUE(again.trace.valid);
    EXPECT_EQ(again.trace.trace_hi, request.trace.trace_hi);
    EXPECT_EQ(again.trace.trace_lo, request.trace.trace_lo);
    EXPECT_EQ(again.trace.span_id, request.trace.span_id);

    // Untraced request: no trace field appears anywhere on the wire.
    serve::SweepRequest plain;
    serve::RequestError err2;
    ASSERT_TRUE(serve::parse_request("{\"id\": \"r2\", \"type\": \"sweep\"}", 1 << 20,
                                     plain, err2));
    EXPECT_FALSE(plain.trace.valid);
    EXPECT_EQ(serve::sweep_request_json(plain).find("trace"), std::string::npos);

    // Malformed trace fields are rejected, not ignored.
    for (const char* line :
         {"{\"id\": \"r3\", \"type\": \"sweep\", \"trace\": \"abc\"}",
          "{\"id\": \"r3\", \"type\": \"sweep\", \"trace\": {\"id\": \"123\"}}",
          "{\"id\": \"r3\", \"type\": \"sweep\", \"trace\": "
          "{\"id\": \"00000000000000ab00000000000000cd\", \"span\": \"12\"}}"}) {
        serve::SweepRequest bad;
        serve::RequestError bad_err;
        EXPECT_FALSE(serve::parse_request(line, 1 << 20, bad, bad_err)) << line;
    }
}

TEST(DoneEventTest, CarriesSpansOnlyWhenTraced) {
    // Untraced done events keep their exact historical bytes.
    EXPECT_EQ(serve::done_event("r1", true),
              "{\"id\": \"r1\", \"event\": \"done\", \"ok\": true}");
    Span span;
    span.name = "enumerate";
    span.tier = "serve";
    span.span_id = 0x1;
    span.parent_id = 0;
    span.start_s = 0.0;
    span.dur_s = 1.0;
    const std::string traced = serve::done_event("r1", true, {span});
    EXPECT_NE(traced.find("\"spans\": ["), std::string::npos);
    EXPECT_NE(traced.find("\"enumerate\""), std::string::npos);
}

TEST(TraceStoreTest, KeepsTheLastNTrees) {
    TraceStore store(2);
    for (int i = 0; i < 4; ++i) {
        TraceTree tree;
        tree.request_id = "r" + std::to_string(i);
        store.add(std::move(tree));
    }
    const std::vector<TraceTree> trees = store.snapshot();
    ASSERT_EQ(trees.size(), 2u);
    EXPECT_EQ(trees[0].request_id, "r2");
    EXPECT_EQ(trees[1].request_id, "r3");
}

/// The canonical traced fixture: the width-4 sweep (same sweep as
/// tests/golden/dse_w4.json), single-threaded, spans recorded with a fixed
/// id seed and an integer-tick clock so the Chrome trace is byte-stable.
std::string traced_w4_chrome_json(std::vector<DesignPoint>* points_out = nullptr) {
    SweepSpec spec;
    spec.widths = {4};
    EvalOptions opts;
    opts.threads = 1;
    CostCache cache;
    opts.hw_cache = &cache;
    auto tick = std::make_shared<std::atomic<int>>(0);
    SpanRecorder recorder("client", 0x5d1c5eed,
                          [tick] { return static_cast<double>((*tick)++); });
    TraceContext root;
    root.trace_hi = recorder.new_span_id();
    root.trace_lo = recorder.new_span_id();
    root.span_id = 0;
    root.valid = true;
    opts.recorder = &recorder;
    opts.trace = root;
    std::vector<DesignPoint> points = evaluate_sweep(spec, opts, nullptr);
    if (points_out != nullptr) *points_out = std::move(points);
    TraceTree tree;
    tree.request_id = "w4";
    tree.trace_hi = root.trace_hi;
    tree.trace_lo = root.trace_lo;
    tree.spans = recorder.take();
    EXPECT_FALSE(tree.spans.empty());
    return chrome_trace_json({tree});
}

TEST(ChromeTraceGoldenTest, FixedSeedWidth4SweepMatchesFixture) {
    const std::string produced = traced_w4_chrome_json();
    const std::string golden_path = std::string(SDLC_TESTS_DIR) + "/golden/trace_w4.json";
    // Legitimate to regenerate ONLY when the trace format changes on
    // purpose:  SDLC_REGEN_TRACE_GOLDEN=1 ./trace_test
    if (std::getenv("SDLC_REGEN_TRACE_GOLDEN") != nullptr) {
        std::ofstream out(golden_path, std::ios::binary | std::ios::trunc);
        out << produced;
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
        GTEST_SKIP() << "regenerated " << golden_path;
    }
    std::ifstream in(golden_path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing fixture " << golden_path
                           << " (regenerate with SDLC_REGEN_TRACE_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(produced, golden.str()) << "Chrome trace JSON drifted from the fixture";

    // Structural sanity independent of the byte compare: valid JSON with
    // client-tier spans carrying the trace id.
    JsonValue parsed;
    std::string error;
    ASSERT_TRUE(json_parse(produced, parsed, &error)) << error;
    const JsonValue* events = parsed.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    EXPECT_GT(events->array.size(), 2u);
}

TEST(ChromeTraceGoldenTest, TracedSweepIsByteRerunnable) {
    // Two traced runs agree byte-for-byte (ids, ticks and span order are
    // all deterministic), and tracing never perturbs the sweep results.
    std::vector<DesignPoint> traced_points;
    const std::string first = traced_w4_chrome_json(&traced_points);
    EXPECT_EQ(first, traced_w4_chrome_json());

    SweepSpec spec;
    spec.widths = {4};
    EvalOptions opts;
    opts.threads = 1;
    CostCache cache;
    opts.hw_cache = &cache;
    const std::vector<DesignPoint> untraced = evaluate_sweep(spec, opts, nullptr);
    ASSERT_EQ(untraced.size(), traced_points.size());
    for (size_t i = 0; i < untraced.size(); ++i) {
        EXPECT_EQ(untraced[i].error, traced_points[i].error);
        EXPECT_TRUE(untraced[i].hw == traced_points[i].hw);
    }
}

}  // namespace
}  // namespace sdlc::obs
