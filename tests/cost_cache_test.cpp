// Tests for the content-keyed synthesis cache: structural hashing, memo
// behavior, and the determinism contract of cached sweeps (identical
// results cache on/off, cold/warm, at any thread count).
#include <gtest/gtest.h>

#include "api/approx_multiplier.h"
#include "dse/cost_cache.h"
#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/sweep.h"

namespace sdlc {
namespace {

Netlist build_net(const MultiplierConfig& cfg) {
    return ApproxMultiplier(cfg).build_netlist().net;
}

SweepSpec small_spec() {
    SweepSpec spec = SweepSpec::for_width(5);
    spec.schemes = {AccumulationScheme::kRowRipple, AccumulationScheme::kDadda};
    return spec;
}

void expect_same_hw(const std::vector<DesignPoint>& a, const std::vector<DesignPoint>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(a[i].hw == b[i].hw) << i << ": " << a[i].describe();
        EXPECT_EQ(a[i].error.nmed, b[i].error.nmed) << i;
    }
}

// --------------------------------------------------------- structural hash ----

TEST(StructuralHash, DeterministicForIdenticalConstruction) {
    const MultiplierConfig cfg{6, 2, MultiplierVariant::kSdlc};
    EXPECT_EQ(build_net(cfg).structural_hash(), build_net(cfg).structural_hash());
}

TEST(StructuralHash, DistinguishesConfigurations) {
    const uint64_t d2 = build_net({6, 2, MultiplierVariant::kSdlc}).structural_hash();
    const uint64_t d3 = build_net({6, 3, MultiplierVariant::kSdlc}).structural_hash();
    const uint64_t wallace =
        build_net({6, 2, MultiplierVariant::kSdlc, AccumulationScheme::kWallace})
            .structural_hash();
    EXPECT_NE(d2, d3);
    EXPECT_NE(d2, wallace);
}

TEST(StructuralHash, SensitiveToOutputsAndGates) {
    Netlist a;
    const NetId ia = a.input("x");
    a.mark_output(a.not_gate(ia), "y");
    Netlist b;
    const NetId ib = b.input("x");
    b.mark_output(b.buf_gate(ib), "y");
    EXPECT_NE(a.structural_hash(), b.structural_hash());
}

// --------------------------------------------------------------- CostCache ----

TEST(CostCache, SecondLookupIsAHit) {
    const Netlist net = build_net({5, 2, MultiplierVariant::kSdlc});
    const CellLibrary lib = CellLibrary::generic_90nm();
    const SynthesisOptions opts;
    CostCache cache;
    const SynthesisReport first = cache.get_or_synthesize(net, lib, opts);
    const SynthesisReport second = cache.get_or_synthesize(net, lib, opts);
    EXPECT_TRUE(first == second);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_TRUE(cache.contains(CostCache::content_key(net, lib, opts)));
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CostCache, KeyDependsOnLibraryAndOptions) {
    const Netlist net = build_net({5, 2, MultiplierVariant::kSdlc});
    const CellLibrary lib = CellLibrary::generic_90nm();
    SynthesisOptions opts;
    const uint64_t base = CostCache::content_key(net, lib, opts);
    opts.clock_mhz *= 2;
    EXPECT_NE(CostCache::content_key(net, lib, opts), base);
    opts = SynthesisOptions{};
    EXPECT_NE(CostCache::content_key(net, lib.scaled(2.0, 1.0, 1.0), opts), base);
    EXPECT_EQ(CostCache::content_key(net, lib, opts), base);
}

TEST(CostCache, MatchesDirectSynthesis) {
    const Netlist net = build_net({5, 3, MultiplierVariant::kSdlc});
    const CellLibrary lib = CellLibrary::generic_90nm();
    const SynthesisOptions opts;
    CostCache cache;
    EXPECT_TRUE(cache.get_or_synthesize(net, lib, opts) == synthesize(net, lib, opts));
}

// ------------------------------------------------------------ cached sweeps ----

TEST(CachedSweep, CacheOnAndOffProduceIdenticalReports) {
    EvalOptions cached;
    EvalOptions uncached;
    uncached.use_hw_cache = false;
    SweepStats cached_stats, uncached_stats;
    const auto a = evaluate_sweep(small_spec(), cached, &cached_stats);
    const auto b = evaluate_sweep(small_spec(), uncached, &uncached_stats);
    expect_same_hw(a, b);
    EXPECT_TRUE(cached_stats.hw_cache_enabled);
    EXPECT_FALSE(uncached_stats.hw_cache_enabled);
    EXPECT_EQ(cached_stats.hw_cache_hits + cached_stats.hw_cache_misses, a.size());
    EXPECT_EQ(uncached_stats.hw_cache_hits + uncached_stats.hw_cache_misses, 0u);
}

TEST(CachedSweep, WarmRunHitsForEveryPointAndReproduces) {
    CostCache cache;
    EvalOptions opts;
    opts.hw_cache = &cache;
    SweepStats cold, warm;
    const auto first = evaluate_sweep(small_spec(), opts, &cold);
    const auto second = evaluate_sweep(small_spec(), opts, &warm);
    expect_same_hw(first, second);
    EXPECT_EQ(cold.hw_cache_misses, cache.size());
    EXPECT_EQ(warm.hw_cache_hits, second.size()) << "warm run must be all hits";
    EXPECT_EQ(warm.hw_cache_misses, 0u);
}

TEST(CachedSweep, StatsAreThreadCountIndependent) {
    EvalOptions one;
    one.threads = 1;
    EvalOptions many;
    many.threads = 4;
    SweepStats s1, s4;
    (void)evaluate_sweep(small_spec(), one, &s1);
    (void)evaluate_sweep(small_spec(), many, &s4);
    EXPECT_EQ(s1.hw_cache_hits, s4.hw_cache_hits);
    EXPECT_EQ(s1.hw_cache_misses, s4.hw_cache_misses);
    EXPECT_EQ(s1.points, s4.points);
}

TEST(CachedSweep, ErrorOnlySweepCountsNoCacheTraffic) {
    EvalOptions opts;
    opts.evaluate_hardware = false;
    SweepStats stats;
    (void)evaluate_sweep(small_spec(), opts, &stats);
    EXPECT_EQ(stats.hw_cache_hits, 0u);
    EXPECT_EQ(stats.hw_cache_misses, 0u);
}

// ------------------------------------------------------------ JSON summary ----

TEST(ExportSummary, JsonCarriesCacheCounters) {
    SweepStats stats;
    const auto points = evaluate_sweep(small_spec(), EvalOptions{}, &stats);
    const std::string json = dse_to_json(points, {}, stats);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"hw_cache\""), std::string::npos);
    EXPECT_NE(json.find("\"hits\": " + std::to_string(stats.hw_cache_hits)),
              std::string::npos);
    EXPECT_NE(json.find("\"misses\": " + std::to_string(stats.hw_cache_misses)),
              std::string::npos);
    EXPECT_NE(json.find("\"points\""), std::string::npos);
}

}  // namespace
}  // namespace sdlc
