#!/usr/bin/env bash
# Distributed sweeps must be byte-identical across cluster topologies, end
# to end over real processes and sockets:
#   - no workers (the single-node reference)
#   - a worker list where every worker is dead (full local fallback)
#   - 1 worker, 3 workers, and the 3-worker list reordered
#   - a worker killed -9 mid-sweep
#   - a dead worker in an otherwise healthy list
#   - a slow worker (a stalling endpoint) forcing shard-timeout retries
# Every topology must reproduce `dse_tool --json` exactly and exit 0; the
# worker fleet is an accelerator, never a result-changing dependency.
# Usage: cluster_topology.sh /path/to/dse_tool /path/to/serve_tool /path/to/cache_tool
set -u

dse="${1:?usage: cluster_topology.sh dse_tool serve_tool cache_tool}"
serve="${2:?usage: cluster_topology.sh dse_tool serve_tool cache_tool}"
cache="${3:?usage: cluster_topology.sh dse_tool serve_tool cache_tool}"
workdir="$(mktemp -d)"
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null
    wait 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

SWEEP="--width 6"
failures=0

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

wait_for_socket() { # path
    for _ in $(seq 600); do [ -S "$1" ] && return 0; sleep 0.05; done
    fail "server never bound $1"
    return 1
}

check_identical() { # name file
    if cmp -s ref.json "$2"; then
        echo "ok: $1 export byte-identical"
    else
        fail "$1 export differs from reference"
    fi
}

# Counter fields from dse_tool's "cluster:" summary line.
cluster_field() { # file field-name
    sed -n "s/^cluster: .*[^0-9]\([0-9][0-9]*\) $2.*/\1/p" "$1"
}

# ---- reference: no workers -------------------------------------------------
"$dse" $SWEEP --json ref.json >/dev/null || fail "reference sweep failed"

# ---- every worker dead: the whole sweep runs locally -----------------------
"$dse" $SWEEP --workers "unix:$workdir/never1.sock,unix:$workdir/never2.sock" \
    --shard-retries 0 --json alldead.json >alldead.txt \
    || fail "all-dead-workers sweep failed"
check_identical "all workers dead" alldead.json
local_shards=$(cluster_field alldead.txt local)
[ "${local_shards:-0}" -gt 0 ] || fail "all-dead run reported no local shards"
completed=$(cluster_field alldead.txt completed)
[ "${completed:-1}" -eq 0 ] || fail "all-dead run reported completed shards"

# ---- one worker ------------------------------------------------------------
"$serve" --listen w1.sock --threads 2 2>/dev/null &
wait_for_socket w1.sock

"$dse" $SWEEP --workers unix:w1.sock --json one.json >one.txt \
    || fail "1-worker sweep failed"
check_identical "1 worker" one.json
completed=$(cluster_field one.txt completed)
[ "${completed:-0}" -gt 0 ] || fail "1-worker run completed no shards remotely"

# ---- three workers ---------------------------------------------------------
"$serve" --listen w2.sock --threads 2 2>/dev/null &
wait_for_socket w2.sock
"$serve" --listen w3.sock --threads 2 2>/dev/null &
wait_for_socket w3.sock
WORKERS="unix:w1.sock,unix:w2.sock,unix:w3.sock"

"$dse" $SWEEP --workers "$WORKERS" --json three.json >three.txt \
    || fail "3-worker sweep failed"
check_identical "3 workers" three.json
local_shards=$(cluster_field three.txt local)
[ "${local_shards:-1}" -eq 0 ] || fail "3-worker run fell back locally"

# The shard cut is fixed, so a reordered worker list changes only who
# computes what, never the bytes.
"$dse" $SWEEP --workers "unix:w3.sock,unix:w1.sock,unix:w2.sock" \
    --json reorder.json >reorder.txt || fail "reordered-worker sweep failed"
check_identical "3 workers reordered" reorder.json

# A second (warm) run against the same fleet also matches the single-node
# warm run's export: the deterministic cache counters replay fleet-wide.
"$dse" $SWEEP --json ref_warm.json --repeat 2 >/dev/null \
    || fail "single-node repeat sweep failed"
"$dse" $SWEEP --workers "$WORKERS" --json warm.json --repeat 2 >warm.txt \
    || fail "3-worker repeat sweep failed"
cmp -s ref_warm.json warm.json || fail "repeat-run cluster export differs"
echo "ok: repeat run byte-identical"

# ---- tracing is invisible to the export ------------------------------------
# A traced distributed sweep must still byte-match the untraced single-node
# reference, and the Chrome trace must stitch in worker-tier spans from the
# shard done events.
"$dse" $SWEEP --workers "$WORKERS" --trace-out cluster_trace.json \
    --json traced_export.json >traced.txt || fail "traced cluster sweep failed"
check_identical "traced (cluster)" traced_export.json
[ -s cluster_trace.json ] || fail "traced run wrote no trace file"
grep -q '"shard_dispatch"' cluster_trace.json \
    || fail "trace carries no shard-dispatch spans"
grep -q '"pid": 3' cluster_trace.json || fail "trace carries no worker-tier spans"

# ---- worker killed mid-sweep -----------------------------------------------
"$serve" --listen victim.sock --threads 1 2>/dev/null &
victim=$!
wait_for_socket victim.sock
"$dse" $SWEEP --workers "unix:w1.sock,unix:victim.sock" --shards 16 \
    --json killed.json >killed.txt &
sweep=$!
sleep 0.08
kill -9 "$victim" 2>/dev/null
wait "$sweep"
[ $? -eq 0 ] || fail "sweep with killed worker exited non-zero"
check_identical "worker killed mid-sweep" killed.json

# ---- dead worker in the list -----------------------------------------------
"$dse" $SWEEP --workers "unix:w1.sock,unix:$workdir/never3.sock" \
    --json deadone.json >deadone.txt || fail "dead-worker sweep failed"
check_identical "dead worker in list" deadone.json
completed=$(cluster_field deadone.txt completed)
[ "${completed:-0}" -gt 0 ] || fail "dead-worker run completed no shards"

# ---- slow worker: shard timeouts retry on the healthy peer -----------------
# A cache daemon that sleeps 2 s before answering anything stands in for a
# stalled replica: it accepts the connection, then produces no bytes, which
# must trip the read-silence budget and requeue the shard.
"$cache" --listen slow.sock --delay-ms 2000 2>/dev/null &
wait_for_socket slow.sock
"$dse" $SWEEP --workers "unix:w1.sock,unix:slow.sock" --shard-timeout-ms 100 \
    --json slow.json >slow.txt || fail "slow-worker sweep failed"
check_identical "slow worker (timeout retry)" slow.json
retried=$(cluster_field slow.txt retried)
[ "${retried:-0}" -gt 0 ] || fail "slow worker recorded no shard retries"

exit "$failures"
