// Tests for the strict JSON parser backing the serve protocol.
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"
#include "util/json_parse.h"

namespace sdlc {
namespace {

JsonValue parse_ok(const std::string& text) {
    JsonValue v;
    std::string error;
    EXPECT_TRUE(json_parse(text, v, &error)) << text << " — " << error;
    return v;
}

void expect_rejected(const std::string& text) {
    JsonValue v;
    std::string error;
    EXPECT_FALSE(json_parse(text, v, &error)) << text;
    EXPECT_FALSE(error.empty()) << "rejection must carry a message";
}

TEST(JsonParse, Scalars) {
    EXPECT_TRUE(parse_ok("null").is_null());
    EXPECT_TRUE(parse_ok("true").boolean);
    EXPECT_FALSE(parse_ok("false").boolean);
    EXPECT_EQ(parse_ok("42").number, 42.0);
    EXPECT_EQ(parse_ok("-0.5").number, -0.5);
    EXPECT_EQ(parse_ok("1e3").number, 1000.0);
    EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
    EXPECT_EQ(parse_ok("  17  ").number, 17.0) << "surrounding whitespace is fine";
}

TEST(JsonParse, Containers) {
    const JsonValue arr = parse_ok("[1, [2, 3], {\"k\": 4}]");
    ASSERT_EQ(arr.array.size(), 3u);
    EXPECT_EQ(arr.array[1].array[1].number, 3.0);
    EXPECT_EQ(arr.array[2].find("k")->number, 4.0);

    const JsonValue obj = parse_ok("{\"a\": 1, \"b\": {\"c\": [true]}}");
    ASSERT_NE(obj.find("b"), nullptr);
    EXPECT_TRUE(obj.find("b")->find("c")->array[0].boolean);
    EXPECT_EQ(obj.find("missing"), nullptr);
    EXPECT_TRUE(parse_ok("[]").array.empty());
    EXPECT_TRUE(parse_ok("{}").object.empty());
}

TEST(JsonParse, StringEscapes) {
    EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t")").string, "a\"b\\c/d\n\t");
    EXPECT_EQ(parse_ok(R"("A")").string, "A");
    EXPECT_EQ(parse_ok(R"("é")").string, "\xc3\xa9");          // é
    EXPECT_EQ(parse_ok(R"("😀")").string, "\xf0\x9f\x98\x80");  // 😀
}

TEST(JsonParse, RoundTripsEmitterOutput) {
    // Whatever util/json.h escapes, the parser must read back verbatim.
    const std::string original = "line1\nline2\t\"quoted\" \\ end\x01";
    EXPECT_EQ(parse_ok(json_string(original)).string, original);
}

TEST(JsonParse, RejectsMalformed) {
    expect_rejected("");
    expect_rejected("{");
    expect_rejected("[1,]");
    expect_rejected("{\"a\": }");
    expect_rejected("{\"a\" 1}");
    expect_rejected("nul");
    expect_rejected("01");       // leading zero
    expect_rejected("1.");       // missing fraction digits
    expect_rejected("+1");
    expect_rejected("'single'");
    expect_rejected("\"unterminated");
    expect_rejected("\"bad \\x escape\"");
    expect_rejected(R"("\ud83d alone")");  // unpaired surrogate
    expect_rejected("{} trailing");
    expect_rejected("[1] [2]");
    expect_rejected("\"tab\tliteral\"");  // unescaped control character
}

TEST(JsonParse, RejectsDuplicateKeys) {
    expect_rejected("{\"a\": 1, \"a\": 2}");
}

TEST(JsonParse, RejectsRunawayNesting) {
    std::string deep;
    for (int i = 0; i < 200; ++i) deep += '[';
    deep += "1";
    for (int i = 0; i < 200; ++i) deep += ']';
    expect_rejected(deep);
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
    JsonValue v;
    std::string error;
    ASSERT_FALSE(json_parse("{\"a\": xyz}", v, &error));
    EXPECT_NE(error.find("byte 6"), std::string::npos) << error;
}

}  // namespace
}  // namespace sdlc
