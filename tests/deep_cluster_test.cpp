// Generalization tests beyond the paper's depth range: the cluster plan,
// functional model and netlist generator must stay consistent for depths
// 5..width (the paper stops at 4).
#include <gtest/gtest.h>

#include "analysis/expected_error.h"
#include "core/functional.h"
#include "core/generator.h"
#include "error/evaluate.h"
#include "util/rng.h"

namespace sdlc {
namespace {

class DeepDepths : public testing::TestWithParam<int> {};

TEST_P(DeepDepths, FunctionalModelStaysUnderestimating) {
    const int depth = GetParam();
    const ClusterPlan plan = ClusterPlan::make(8, depth);
    for (uint64_t a = 0; a < 256; a += 3) {
        for (uint64_t b = 0; b < 256; b += 5) {
            EXPECT_LE(sdlc_multiply(plan, a, b), a * b) << depth;
        }
    }
}

TEST_P(DeepDepths, NetlistMatchesModel) {
    const int depth = GetParam();
    SdlcOptions opts;
    opts.depth = depth;
    const MultiplierNetlist m = build_sdlc_multiplier(8, opts);
    const ClusterPlan plan = ClusterPlan::make(8, depth);
    Xoshiro256 rng(90 + static_cast<uint64_t>(depth));
    std::vector<uint64_t> as(64), bs(64);
    for (int pass = 0; pass < 8; ++pass) {
        for (int i = 0; i < 64; ++i) {
            as[i] = rng.next() & 0xff;
            bs[i] = rng.next() & 0xff;
        }
        const auto prods = simulate_batch(m, as, bs);
        for (int i = 0; i < 64; ++i) {
            ASSERT_EQ(prods[i], sdlc_multiply(plan, as[i], bs[i]))
                << "depth " << depth << ": " << as[i] << "*" << bs[i];
        }
    }
}

TEST_P(DeepDepths, AnalyticMedStaysExact) {
    const int depth = GetParam();
    const ClusterPlan plan = ClusterPlan::make(8, depth);
    const ErrorMetrics sim = exhaustive_metrics(
        8, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
    EXPECT_NEAR(analytic_med(plan), sim.med, sim.med * 1e-10 + 1e-12) << depth;
}

INSTANTIATE_TEST_SUITE_P(DepthsBeyondPaper, DeepDepths, testing::Values(5, 6, 7, 8),
                         [](const auto& pinfo) { return "d" + std::to_string(pinfo.param); });

TEST(DeepClusters, FullDepthCompressesToFewestRows) {
    // depth == width: one cluster covering all rows.
    const ClusterPlan plan = ClusterPlan::make(8, 8);
    ASSERT_EQ(plan.groups().size(), 1u);
    EXPECT_EQ(plan.groups()[0].rows, 8);
    Netlist nl;
    const OperandPorts ports = make_operand_ports(nl, 8);
    const BitMatrix matrix = build_sdlc_matrix(nl, ports.a, ports.b, plan);
    // Inside the cluster extent every compressed weight holds exactly one OR
    // output, so the matrix is dramatically flattened vs the accurate 8.
    EXPECT_LE(matrix.max_height(), 4);
}

TEST(DeepClusters, ErrorPeaksNearDepthFiveAt8Bit) {
    // Finding (beyond the paper): MED grows with depth only up to ~N/2 + 1.
    // Deeper clusters mean *fewer* groups, and the significance-driven
    // extent rule then covers fewer compressed sites overall, so the mean
    // error decreases again even though each site ORs more bits.
    std::vector<double> med;
    for (int depth = 2; depth <= 8; ++depth) {
        med.push_back(analytic_med(ClusterPlan::make(8, depth)));
    }
    // Monotone rise through the paper's range and to the depth-5 peak...
    EXPECT_LT(med[0], med[1]);  // d2 < d3
    EXPECT_LT(med[1], med[2]);  // d3 < d4
    EXPECT_LT(med[2], med[3]);  // d4 < d5
    // ...then decline.
    EXPECT_GT(med[3], med[4]);  // d5 > d6
    EXPECT_GT(med[4], med[5]);  // d6 > d7
}

TEST(DeepClusters, AnalyticErAgreesWithSamplingAt14Bits) {
    // Closed-form depth-2 ER vs a large random sample at a width where
    // exhaustive checking is expensive.
    const double analytic = analytic_error_rate_depth2(14);
    const ErrorMetrics sim = sampled_metrics(
        14, 1u << 22, 777, [](uint64_t a, uint64_t b) {
            return sdlc_multiply_fast2(14, a, b);
        });
    EXPECT_NEAR(analytic, sim.error_rate, 2e-3);
}

TEST(DeepClusters, WideWidthPlansAreWellFormed) {
    for (int width : {64, 128}) {
        for (int depth : {2, 3, 4, 8, 16}) {
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            EXPECT_FALSE(plan.groups().empty());
            for (const ClusterGroup& g : plan.groups()) {
                EXPECT_GE(g.extent, 1);
                EXPECT_LE(g.base_row + g.rows, width);
            }
        }
    }
}

}  // namespace
}  // namespace sdlc
