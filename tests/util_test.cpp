// Unit tests for src/util: bit helpers, U256 arithmetic, RNG determinism,
// table and CSV formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/bitops.h"
#include "util/csv.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/u256.h"

namespace sdlc {
namespace {

TEST(Bitops, BitExtraction) {
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 3), 1u);
    EXPECT_EQ(bit(~uint64_t{0}, 63), 1u);
}

TEST(Bitops, MaskLow) {
    EXPECT_EQ(mask_low(0), 0u);
    EXPECT_EQ(mask_low(1), 1u);
    EXPECT_EQ(mask_low(8), 0xffu);
    EXPECT_EQ(mask_low(64), ~uint64_t{0});
}

TEST(Bitops, CeilDiv) {
    EXPECT_EQ(ceil_div(8, 2), 4);
    EXPECT_EQ(ceil_div(9, 2), 5);
    EXPECT_EQ(ceil_div(1, 4), 1);
    EXPECT_EQ(ceil_div(0, 4), 0);
}

TEST(Bitops, IsPow2) {
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(12));
}

TEST(U256, AddCarriesAcrossLimbs) {
    U256 a(~uint64_t{0});
    U256 b(1);
    const U256 s = add(a, b);
    EXPECT_EQ(s.w[0], 0u);
    EXPECT_EQ(s.w[1], 1u);
    EXPECT_EQ(s.w[2], 0u);
}

TEST(U256, SubInverseOfAdd) {
    U256 a(0x123456789abcdefull);
    U256 b(0xfedcba987654321ull);
    EXPECT_EQ(sub(add(a, b), b), a);
}

TEST(U256, ShlAcrossLimbBoundary) {
    U256 a(1);
    const U256 s = shl(a, 130);
    EXPECT_EQ(s.w[0], 0u);
    EXPECT_EQ(s.w[1], 0u);
    EXPECT_EQ(s.w[2], 4u);
}

TEST(U256, ShlBy256IsZero) {
    EXPECT_TRUE(shl(U256(42), 256).is_zero());
}

TEST(U256, Mul128MatchesNativeFor64Bit) {
    const uint64_t a = 0xdeadbeefcafebabeull;
    const uint64_t b = 0x123456789abcdef0ull;
    const U256 p = mul_128(a, 0, b, 0);
    const unsigned __int128 ref = static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(p.w[0], static_cast<uint64_t>(ref));
    EXPECT_EQ(p.w[1], static_cast<uint64_t>(ref >> 64));
    EXPECT_EQ(p.w[2], 0u);
}

TEST(U256, Mul128FullWidth) {
    // (2^127) * (2^127) = 2^254.
    U256 p = mul_128(0, uint64_t{1} << 63, 0, uint64_t{1} << 63);
    U256 expected;
    expected.set_bit(254);
    EXPECT_EQ(p, expected);
}

TEST(U256, MulDistributesOverAdd) {
    // (a + b) * c == a*c + b*c for random-ish 128-bit values.
    const uint64_t c_lo = 0x7777777777777777ull, c_hi = 0x1111;
    const U256 ac = mul_128(5, 9, c_lo, c_hi);
    const U256 bc = mul_128(11, 2, c_lo, c_hi);
    const U256 sum_c = mul_128(16, 11, c_lo, c_hi);
    EXPECT_EQ(add(ac, bc), sum_c);
}

TEST(U256, LessComparesHighLimbsFirst) {
    U256 a(5);
    U256 b;
    b.set_bit(200);
    EXPECT_TRUE(less(a, b));
    EXPECT_FALSE(less(b, a));
    EXPECT_FALSE(less(a, a));
}

TEST(U256, ToHex) {
    EXPECT_EQ(to_hex(U256(0)), "0");
    EXPECT_EQ(to_hex(U256(0xabc)), "abc");
    U256 big;
    big.set_bit(128);
    EXPECT_EQ(to_hex(big), "100000000000000000000000000000000");
}

TEST(U256, ToDoubleSmallExact) {
    EXPECT_DOUBLE_EQ(to_double(U256(12345)), 12345.0);
}

TEST(U256, BitRoundTrip) {
    U256 v;
    v.set_bit(0);
    v.set_bit(63);
    v.set_bit(64);
    v.set_bit(255);
    EXPECT_EQ(v.bit(0), 1u);
    EXPECT_EQ(v.bit(1), 0u);
    EXPECT_EQ(v.bit(63), 1u);
    EXPECT_EQ(v.bit(64), 1u);
    EXPECT_EQ(v.bit(255), 1u);
}

TEST(Rng, DeterministicForSeed) {
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
    Xoshiro256 rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowRespectsBound) {
    Xoshiro256 rng(9);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(0), 0u);
}

TEST(TextTable, AlignsColumns) {
    TextTable t({"A", "LongHeader"});
    t.add_row({"xx", "1"});
    t.add_row({"y", "22"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("A   LongHeader"), std::string::npos);
    EXPECT_NE(s.find("xx  1"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsMismatchedRow) {
    TextTable t({"A", "B"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
    EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Format, FixedAndPercent) {
    EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
    EXPECT_EQ(fmt_fixed(2.0, 0), "2");
    EXPECT_EQ(fmt_percent(0.4911, 2), "49.11");
}

TEST(Csv, EscapesSpecialCells) {
    const std::string path = testing::TempDir() + "/sdlc_csv_test.csv";
    {
        CsvWriter w(path);
        w.write_row({"plain", "with,comma", "with\"quote"});
        w.close();
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\"");
    std::remove(path.c_str());
}

TEST(Csv, ThrowsOnBadPath) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace sdlc
