// Sweep coverage for the ClusterPlan::make extent formula across widths
// 4..32 and depths 1..8: extents stay positive and strictly ordered, every
// row is accounted for, and compression_sites() is consistent with the
// groups' extents and with the >= 2-potential-bit site definition.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cluster_plan.h"

namespace sdlc {
namespace {

constexpr int kMinWidth = 4;
constexpr int kMaxWidth = 32;
constexpr int kMaxDepth = 8;

/// Number of partial-product bits a cluster could place at relative weight j
/// above its base: row k of the cluster spans relative weights [k, k+N-1].
int potential_bits(const ClusterGroup& g, int width, int j) {
    const int lo = std::max(0, j - width + 1);
    const int hi = std::min(g.rows - 1, j);
    return hi >= lo ? hi - lo + 1 : 0;
}

TEST(ClusterPlanExtents, PositiveAndStrictlyDecreasingAcrossGroups) {
    for (int width = kMinWidth; width <= kMaxWidth; ++width) {
        for (int depth = 1; depth <= std::min(width, kMaxDepth); ++depth) {
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            const auto& groups = plan.groups();
            for (size_t g = 0; g < groups.size(); ++g) {
                EXPECT_GE(groups[g].extent, 1)
                    << "width " << width << " depth " << depth << " group " << g;
                if (g > 0) {
                    EXPECT_LT(groups[g].extent, groups[g - 1].extent)
                        << "width " << width << " depth " << depth << " group " << g;
                }
            }
        }
    }
}

TEST(ClusterPlanExtents, ExtentsMonotoneNonDecreasingInWidth) {
    // For a fixed depth and group index, widening the multiplier never
    // shrinks a cluster's compressed span.
    for (int depth = 2; depth <= kMaxDepth; ++depth) {
        for (int width = std::max(kMinWidth, depth); width < kMaxWidth; ++width) {
            const ClusterPlan narrow = ClusterPlan::make(width, depth);
            const ClusterPlan wide = ClusterPlan::make(width + 1, depth);
            const size_t common = std::min(narrow.groups().size(), wide.groups().size());
            for (size_t g = 0; g < common; ++g) {
                EXPECT_GE(wide.groups()[g].extent, narrow.groups()[g].extent)
                    << "depth " << depth << " width " << width << " group " << g;
            }
        }
    }
}

TEST(ClusterPlanExtents, EveryRowCoveredOrLoneTrailing) {
    for (int width = kMinWidth; width <= kMaxWidth; ++width) {
        for (int depth = 2; depth <= std::min(width, kMaxDepth); ++depth) {
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            for (int r = 0; r < width; ++r) {
                int owners = 0;
                for (const ClusterGroup& g : plan.groups()) {
                    if (r >= g.base_row && r < g.base_row + g.rows) ++owners;
                }
                // The only uncovered row is a trailing cluster of a single
                // row, which cannot be compressed.
                const bool lone_trailing = (width % depth == 1) && r == width - 1;
                EXPECT_EQ(owners, lone_trailing ? 0 : 1)
                    << "width " << width << " depth " << depth << " row " << r;
                EXPECT_EQ(plan.group_of_row(r) != nullptr, owners == 1);
            }
        }
    }
}

TEST(ClusterPlanExtents, GroupGeometryMatchesDepthGrid) {
    for (int width = kMinWidth; width <= kMaxWidth; ++width) {
        for (int depth = 2; depth <= std::min(width, kMaxDepth); ++depth) {
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            for (const ClusterGroup& g : plan.groups()) {
                EXPECT_EQ(g.base_row % depth, 0);
                EXPECT_EQ(g.rows, std::min(depth, width - g.base_row));
                EXPECT_GE(g.rows, 2);
                EXPECT_LE(g.extent, width + g.rows - 3)
                    << "extent past the last >=2-bit weight position";
            }
        }
    }
}

TEST(ClusterPlanExtents, CompressionSitesConsistent) {
    for (int width = kMinWidth; width <= kMaxWidth; ++width) {
        for (int depth = 1; depth <= std::min(width, kMaxDepth); ++depth) {
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            int sum_extents = 0;
            int multi_bit_sites = 0;
            for (const ClusterGroup& g : plan.groups()) {
                sum_extents += g.extent;
                for (int j = 1; j <= g.extent; ++j) {
                    // Every compressed position must be a real OR site.
                    EXPECT_GE(potential_bits(g, width, j), 2)
                        << "width " << width << " depth " << depth << " base " << g.base_row
                        << " j " << j;
                    ++multi_bit_sites;
                }
            }
            EXPECT_EQ(plan.compression_sites(), sum_extents);
            EXPECT_EQ(plan.compression_sites(), multi_bit_sites);
            if (depth == 1) EXPECT_EQ(plan.compression_sites(), 0);
        }
    }
}

}  // namespace
}  // namespace sdlc
