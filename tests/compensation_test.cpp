// Tests for the error-compensation extension.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/accurate.h"
#include "core/compensation.h"
#include "core/functional.h"
#include "error/evaluate.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace sdlc {
namespace {

TEST(Compensation, TermsCoverEveryInGroupPair) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    const auto terms = compensation_terms(plan);
    ASSERT_EQ(terms.size(), 4u);  // one pair per depth-2 group
    for (const auto& t : terms) {
        EXPECT_EQ(t.row_b, t.row_a + 1);
        EXPECT_GT(t.value, 0u);
    }
    // Depth 3 has three pairs per full group: {0,1},{0,2},{1,2}.
    const auto terms3 = compensation_terms(ClusterPlan::make(8, 3));
    EXPECT_EQ(terms3.size(), 3u + 3u + 1u);  // two full groups + trailing 2-row group
}

TEST(Compensation, ConstantMatchesHandComputation) {
    // 8-bit depth 2, group 0 (rows 0,1): sites j=1..7, both rows present for
    // all j in 1..7: expected loss sum 2^j/4 for j=1..7 = 63.5, rounded to
    // the nearest power of two -> 64.
    const auto terms = compensation_terms(ClusterPlan::make(8, 2));
    EXPECT_EQ(terms[0].row_a, 0);
    EXPECT_EQ(terms[0].row_b, 1);
    EXPECT_EQ(terms[0].value, 64u);
}

TEST(Compensation, NoCompensationWithoutActivePairs) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    // B = 0x55 has no (even,odd) pair, so compensation must not fire.
    for (uint64_t a = 0; a < 256; ++a) {
        EXPECT_EQ(sdlc_multiply_compensated(plan, a, 0x55), sdlc_multiply(plan, a, 0x55));
    }
}

TEST(Compensation, ReducesBiasToNearZero) {
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    double plain_bias = 0.0, comp_bias = 0.0;
    for (uint64_t a = 0; a < 256; ++a) {
        for (uint64_t b = 0; b < 256; ++b) {
            plain_bias += static_cast<double>(sdlc_multiply(plan, a, b)) -
                          static_cast<double>(a * b);
            comp_bias += static_cast<double>(sdlc_compensated_signed_error(plan, a, b));
        }
    }
    plain_bias /= 65536.0;
    comp_bias /= 65536.0;
    EXPECT_LT(plain_bias, -20.0);  // plain SDLC underestimates strongly
    // Power-of-two rounded constants cancel more than 90 % of the bias.
    EXPECT_LT(std::abs(comp_bias), 0.1 * std::abs(plain_bias));
}

TEST(Compensation, ReducesNmedAtEveryDepth) {
    for (int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const ErrorMetrics plain = exhaustive_metrics(
            8, [&](uint64_t a, uint64_t b) { return sdlc_multiply(plan, a, b); });
        const ErrorMetrics comp = exhaustive_metrics(
            8, [&](uint64_t a, uint64_t b) { return sdlc_multiply_compensated(plan, a, b); });
        EXPECT_LT(comp.nmed, plain.nmed) << "depth " << depth;
    }
}

TEST(Compensation, NetlistMatchesFunctionalModelExhaustive6Bit) {
    for (int depth : {2, 3}) {
        SdlcOptions opts;
        opts.depth = depth;
        const MultiplierNetlist m = build_sdlc_compensated_multiplier(6, opts);
        const ClusterPlan plan = ClusterPlan::make(6, depth);
        for (uint64_t a = 0; a < 64; ++a) {
            for (uint64_t b = 0; b < 64; ++b) {
                ASSERT_EQ(simulate_one(m, a, b),
                          sdlc_multiply_compensated(plan, a, b) & mask_low(12))
                    << "d" << depth << " " << a << "*" << b;
            }
        }
    }
}

TEST(Compensation, NetlistMatchesFunctionalModelRandom8Bit) {
    SdlcOptions opts;
    const MultiplierNetlist m = build_sdlc_compensated_multiplier(8, opts);
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    Xoshiro256 rng(404);
    std::vector<uint64_t> as(64), bs(64);
    for (int pass = 0; pass < 16; ++pass) {
        for (int i = 0; i < 64; ++i) {
            as[i] = rng.next() & 0xff;
            bs[i] = rng.next() & 0xff;
        }
        const auto prods = simulate_batch(m, as, bs);
        for (int i = 0; i < 64; ++i) {
            ASSERT_EQ(prods[i], sdlc_multiply_compensated(plan, as[i], bs[i]) & mask_low(16));
        }
    }
}

TEST(Compensation, NeverOverflowsProductRange8Bit) {
    // The compensated product must stay within 2N bits for all operands
    // (otherwise the netlist, which truncates mod 2^2N, would diverge).
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    for (uint64_t a = 0; a < 256; ++a) {
        for (uint64_t b = 0; b < 256; ++b) {
            ASSERT_LT(sdlc_multiply_compensated(plan, a, b), uint64_t{1} << 16);
        }
    }
}

TEST(Compensation, HardwareCostStaysWellBelowAccurate) {
    // The gated constants add one AND per row pair plus one matrix bit each,
    // but a taller matrix column can trigger one extra accumulation row, so
    // the honest bound is looser: the compensated design must stay clearly
    // cheaper than the accurate multiplier while the plain SDLC design stays
    // cheaper than the compensated one.
    SdlcOptions opts;
    const MultiplierNetlist plain = build_sdlc_multiplier(8, opts);
    const MultiplierNetlist comp = build_sdlc_compensated_multiplier(8, opts);
    const MultiplierNetlist accurate = build_accurate_multiplier(8);
    EXPECT_GT(comp.net.logic_gate_count(), plain.net.logic_gate_count());
    EXPECT_LT(comp.net.logic_gate_count(), accurate.net.logic_gate_count());
}

}  // namespace
}  // namespace sdlc
