#!/usr/bin/env bash
# Sweep exports must be byte-identical across cache-tier topologies, end to
# end over real processes and sockets:
#   - no peers (the reference)
#   - 1 cache daemon, cold and warm
#   - 3 cache daemons (sharded), cold and warm
#   - a peer killed mid-sweep
#   - a dead peer in the list
#   - a slow peer forcing client timeouts
#   - a durable daemon kill -9'd, restarted from --data-dir, rejoining warm
#   - a torn log tail (crash mid-append) truncated on recovery
#   - replicas=2 with the primary daemon dead (live replica serves)
# Every topology must reproduce `dse_tool --json` exactly and exit 0; the
# remote tier is an accelerator, never a result-changing dependency.
# Usage: cache_topology.sh /path/to/dse_tool /path/to/cache_tool
set -u

dse="${1:?usage: cache_topology.sh /path/to/dse_tool /path/to/cache_tool}"
cache="${2:?usage: cache_topology.sh /path/to/dse_tool /path/to/cache_tool}"
workdir="$(mktemp -d)"
cleanup() {
    # shellcheck disable=SC2046
    kill $(jobs -p) 2>/dev/null
    wait 2>/dev/null
    rm -rf "$workdir"
}
trap cleanup EXIT
cd "$workdir"

SWEEP="--width 6"
failures=0

fail() {
    echo "FAIL: $1" >&2
    failures=$((failures + 1))
}

wait_for_socket() { # path
    for _ in $(seq 600); do [ -S "$1" ] && return 0; sleep 0.05; done
    fail "daemon never bound $1"
    return 1
}

check_identical() { # name file
    if cmp -s ref.json "$2"; then
        echo "ok: $1 export byte-identical"
    else
        fail "$1 export differs from reference"
    fi
}

# Counter fields from dse_tool's "remote cache:" summary line.
remote_field() { # file field-name
    sed -n "s/^remote cache: .*[^0-9]\([0-9][0-9]*\) $2.*/\1/p" "$1"
}

# ---- reference: no peers ---------------------------------------------------
"$dse" $SWEEP --json ref.json >/dev/null || fail "reference sweep failed"

# ---- one peer: cold then warm ---------------------------------------------
"$cache" --listen one.sock 2>/dev/null &
wait_for_socket one.sock

"$dse" $SWEEP --cache-peers unix:one.sock --json one_cold.json >one_cold.txt \
    || fail "1-peer cold sweep failed"
check_identical "1-peer cold" one_cold.json
puts=$(remote_field one_cold.txt puts)
[ "${puts:-0}" -gt 0 ] || fail "1-peer cold run recorded no puts"

"$dse" $SWEEP --cache-peers unix:one.sock --json one_warm.json >one_warm.txt \
    || fail "1-peer warm sweep failed"
check_identical "1-peer warm" one_warm.json
hits=$(remote_field one_warm.txt hits)
[ "${hits:-0}" -gt 0 ] || fail "1-peer warm run recorded no remote hits"

# Daemon-side view agrees: entries resident, hits served.
"$cache" --stats --socket one.sock >one_stats.json || fail "stats query failed"
grep -q '"entries": 0' one_stats.json && fail "daemon holds no entries"
grep -q '"hits": 0,' one_stats.json && fail "daemon served no hits"
"$cache" --shutdown --socket one.sock >/dev/null || fail "daemon shutdown failed"

# ---- three peers: sharded cold, then warm ---------------------------------
for i in 1 2 3; do
    "$cache" --listen "three$i.sock" 2>/dev/null &
    wait_for_socket "three$i.sock"
done
PEERS="unix:three1.sock,unix:three2.sock,unix:three3.sock"

"$dse" $SWEEP --cache-peers "$PEERS" --json three_cold.json >three_cold.txt \
    || fail "3-peer cold sweep failed"
check_identical "3-peer cold" three_cold.json

"$dse" $SWEEP --cache-peers "$PEERS" --json three_warm.json >three_warm.txt \
    || fail "3-peer warm sweep failed"
check_identical "3-peer warm" three_warm.json
hits=$(remote_field three_warm.txt hits)
[ "${hits:-0}" -gt 0 ] || fail "3-peer warm run recorded no remote hits"

# Consistent hashing spread the keys: every daemon owns at least one entry,
# and no daemon owns them all.
total=0
for i in 1 2 3; do
    "$cache" --stats --socket "three$i.sock" >"three${i}_stats.json"
    entries=$(sed -n 's/.*"entries": \([0-9]*\).*/\1/p' "three${i}_stats.json")
    [ "${entries:-0}" -gt 0 ] || fail "daemon $i owns no keys (sharding broken)"
    total=$((total + ${entries:-0}))
done
max=$(for i in 1 2 3; do sed -n 's/.*"entries": \([0-9]*\).*/\1/p' "three${i}_stats.json"; done | sort -n | tail -1)
[ "$max" -lt "$total" ] || fail "one daemon owns every key (sharding broken)"

# A warm sweep with the peer list in a different order shards identically:
# still all hits, still byte-identical.
"$dse" $SWEEP --cache-peers "unix:three3.sock,unix:three1.sock,unix:three2.sock" \
    --json three_reorder.json >three_reorder.txt || fail "reordered-peer sweep failed"
check_identical "3-peer reordered" three_reorder.json
misses=$(remote_field three_reorder.txt misses)
[ "${misses:-1}" -eq 0 ] || fail "reordered peer list remapped keys ($misses misses)"

for i in 1 2 3; do "$cache" --shutdown --socket "three$i.sock" >/dev/null; done

# ---- peer killed mid-sweep -------------------------------------------------
# The daemon answers each request 3 ms late so the cold sweep takes long
# enough to kill it in flight; the export must still be byte-identical and
# the run must exit 0.
"$cache" --listen victim.sock --delay-ms 3 2>/dev/null &
victim=$!
wait_for_socket victim.sock
"$dse" $SWEEP --cache-peers unix:victim.sock --json killed.json >killed.txt &
sweep=$!
sleep 0.12
kill -9 "$victim" 2>/dev/null
wait "$sweep"
[ $? -eq 0 ] || fail "sweep with killed peer exited non-zero"
check_identical "peer killed mid-sweep" killed.json

# ---- dead peer in the list -------------------------------------------------
"$cache" --listen alive.sock 2>/dev/null &
wait_for_socket alive.sock
"$dse" $SWEEP --cache-peers "unix:alive.sock,unix:$workdir/never-existed.sock" \
    --json dead_peer.json >dead_peer.txt || fail "dead-peer sweep failed"
check_identical "dead peer in list" dead_peer.json
errors=$(remote_field dead_peer.txt errors)
[ "${errors:-0}" -gt 0 ] || fail "dead peer recorded no errors"
"$cache" --shutdown --socket alive.sock >/dev/null

# ---- slow peer: timeouts degrade to local synthesis ------------------------
"$cache" --listen slow.sock --delay-ms 2000 2>/dev/null &
wait_for_socket slow.sock
"$dse" $SWEEP --cache-peers unix:slow.sock --cache-timeout-ms 25 \
    --json slow.json >slow.txt || fail "slow-peer sweep failed"
check_identical "slow peer (timeouts)" slow.json
timeouts=$(remote_field slow.txt timeouts)
[ "${timeouts:-0}" -gt 0 ] || fail "slow peer recorded no timeouts"
"$cache" --shutdown --socket slow.sock >/dev/null 2>&1

# Prometheus counter value from a `cache_tool --scrape` dump.
scrape_field() { # file metric-name
    sed -n "s/^$2 \([0-9][0-9]*\)\$/\1/p" "$1"
}

# ---- durable daemon: kill -9, restart from --data-dir, rejoin warm ---------
"$cache" --listen durable.sock --data-dir durable_data 2>/dev/null &
victim=$!
wait_for_socket durable.sock

"$dse" $SWEEP --cache-peers unix:durable.sock --json durable_cold.json >durable_cold.txt \
    || fail "durable cold sweep failed"
check_identical "durable cold" durable_cold.json
puts=$(remote_field durable_cold.txt puts)
[ "${puts:-0}" -gt 0 ] || fail "durable cold run recorded no puts"

kill -9 "$victim" 2>/dev/null
wait "$victim" 2>/dev/null

"$cache" --listen durable.sock --data-dir durable_data 2>durable_restart.log &
wait_for_socket durable.sock

"$dse" $SWEEP --cache-peers unix:durable.sock --json durable_warm.json >durable_warm.txt \
    || fail "durable warm sweep failed"
check_identical "durable warm after kill -9" durable_warm.json
grep -q "recovered" durable_restart.log || fail "restarted daemon logged no recovery"
hits=$(remote_field durable_warm.txt hits)
[ "${hits:-0}" -gt 0 ] || fail "restarted daemon served no remote hits"

# The daemon's own counters prove the warmth survived the kill: recovered
# entries resident and warm hits (hits on recovered keys) both nonzero.
"$cache" --scrape --socket durable.sock >durable_scrape.txt || fail "scrape failed"
recovered=$(scrape_field durable_scrape.txt sdlc_cache_recovered_entries)
[ "${recovered:-0}" -gt 0 ] || fail "scrape shows no recovered entries"
warm_hits=$(scrape_field durable_scrape.txt sdlc_cache_warm_hits_total)
[ "${warm_hits:-0}" -gt 0 ] || fail "scrape shows no warm hits after restart"
daemon_hits=$(scrape_field durable_scrape.txt sdlc_cache_hits_total)
[ "${daemon_hits:-0}" -gt 0 ] || fail "scrape shows no hits after restart"

# ---- torn log tail: crash mid-append is truncated, prefix survives ---------
"$cache" --shutdown --socket durable.sock >/dev/null || fail "durable shutdown failed"
# Simulate a crash mid-append: garbage where the next frame would have gone.
printf '\x40\x00\x00\x00TORN-FRAME-GARBAGE' >> durable_data/cache.log

"$cache" --listen durable.sock --data-dir durable_data 2>torn_restart.log &
wait_for_socket durable.sock

"$dse" $SWEEP --cache-peers unix:durable.sock --json torn_warm.json >torn_warm.txt \
    || fail "post-torn-tail sweep failed"
check_identical "torn log tail" torn_warm.json
grep -q "truncated" torn_restart.log || fail "torn tail was not reported truncated"
hits=$(remote_field torn_warm.txt hits)
[ "${hits:-0}" -gt 0 ] || fail "torn-tail recovery lost the warm entries"
"$cache" --scrape --socket durable.sock >torn_scrape.txt || fail "torn scrape failed"
recovered=$(scrape_field torn_scrape.txt sdlc_cache_recovered_entries)
[ "${recovered:-0}" -gt 0 ] || fail "torn-tail recovery recovered nothing"
"$cache" --shutdown --socket durable.sock >/dev/null

# ---- tracing is invisible to the export ------------------------------------
# A traced sweep through a cache peer must still byte-match the untraced
# reference, and the Chrome trace must carry daemon-side (cache-tier) spans.
"$cache" --listen traced.sock 2>/dev/null &
wait_for_socket traced.sock
"$dse" $SWEEP --cache-peers unix:traced.sock --trace-out cache_trace.json \
    --json traced_export.json >traced.txt || fail "traced cache sweep failed"
check_identical "traced (cache tier)" traced_export.json
[ -s cache_trace.json ] || fail "traced run wrote no trace file"
grep -q '"cache_lookup_remote"' cache_trace.json \
    || fail "trace carries no remote-lookup spans"
grep -q '"pid": 4' cache_trace.json || fail "trace carries no cache-tier spans"
"$cache" --shutdown --socket traced.sock >/dev/null

# ---- replicas=2: dead primary, live replica --------------------------------
"$cache" --listen repl1.sock 2>/dev/null &
repl1=$!
wait_for_socket repl1.sock
"$cache" --listen repl2.sock 2>/dev/null &
wait_for_socket repl2.sock
RPEERS="unix:repl1.sock,unix:repl2.sock"

"$dse" $SWEEP --cache-peers "$RPEERS" --cache-replicas 2 \
    --json repl_cold.json >repl_cold.txt || fail "replicated cold sweep failed"
check_identical "replicated cold" repl_cold.json

# Full replication: both daemons hold every key, so their entry counts match.
e1=$("$cache" --stats --socket repl1.sock | sed -n 's/.*"entries": \([0-9]*\).*/\1/p')
e2=$("$cache" --stats --socket repl2.sock | sed -n 's/.*"entries": \([0-9]*\).*/\1/p')
[ "${e1:-0}" -gt 0 ] || fail "replica daemon 1 holds no entries"
[ "${e1:-0}" -eq "${e2:-1}" ] || fail "replicas diverge ($e1 vs $e2 entries)"

kill -9 "$repl1" 2>/dev/null
wait "$repl1" 2>/dev/null

"$dse" $SWEEP --cache-peers "$RPEERS" --cache-replicas 2 \
    --json repl_dead.json >repl_dead.txt || fail "dead-primary sweep failed"
check_identical "dead primary, live replica" repl_dead.json
replica_hits=$(remote_field repl_dead.txt "replica hits")
direct_hits=$(remote_field repl_dead.txt hits)
[ $(( ${replica_hits:-0} + ${direct_hits:-0} )) -gt 0 ] \
    || fail "surviving replica served no hits"
errors=$(remote_field repl_dead.txt errors)
[ "${errors:-0}" -gt 0 ] || fail "dead replica daemon recorded no errors"
"$cache" --shutdown --socket repl2.sock >/dev/null

exit "$failures"
