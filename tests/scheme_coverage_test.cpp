// Cross-scheme and cross-library coverage: every multiplier variant under
// every accumulation scheme, plus cost-model scaling properties.
#include <gtest/gtest.h>

#include "baselines/accurate.h"
#include "core/compensation.h"
#include "core/functional.h"
#include "core/signed_mul.h"
#include "tech/sta.h"
#include "tech/synthesis.h"
#include "util/rng.h"

namespace sdlc {
namespace {

const AccumulationScheme kAllSchemes[] = {
    AccumulationScheme::kRowRipple,
    AccumulationScheme::kWallace,
    AccumulationScheme::kDadda,
    AccumulationScheme::kRowFastCpa,
};

TEST(SchemeCoverage, CompensatedNetlistMatchesModelUnderAllSchemes) {
    const ClusterPlan plan = ClusterPlan::make(6, 2);
    for (const AccumulationScheme scheme : kAllSchemes) {
        SdlcOptions opts;
        opts.scheme = scheme;
        const MultiplierNetlist m = build_sdlc_compensated_multiplier(6, opts);
        for (uint64_t a = 0; a < 64; a += 3) {
            for (uint64_t b = 0; b < 64; ++b) {
                ASSERT_EQ(simulate_one(m, a, b), sdlc_multiply_compensated(plan, a, b))
                    << accumulation_scheme_name(scheme) << " " << a << "*" << b;
            }
        }
    }
}

TEST(SchemeCoverage, SignedNetlistMatchesModelUnderAllSchemes) {
    const ClusterPlan plan = ClusterPlan::make(5, 2);
    for (const AccumulationScheme scheme : kAllSchemes) {
        SdlcOptions opts;
        opts.scheme = scheme;
        const MultiplierNetlist m = build_sdlc_signed_multiplier(5, opts);
        for (uint64_t a = 0; a < 32; ++a) {
            for (uint64_t b = 0; b < 32; ++b) {
                const int64_t sa = static_cast<int64_t>((a ^ 16u) - 16);
                const int64_t sb = static_cast<int64_t>((b ^ 16u) - 16);
                const uint64_t expect =
                    static_cast<uint64_t>(sdlc_multiply_signed(plan, sa, sb)) & 0x3ffu;
                ASSERT_EQ(simulate_one(m, a, b), expect)
                    << accumulation_scheme_name(scheme) << " " << sa << "*" << sb;
            }
        }
    }
}

TEST(SchemeCoverage, FastCpaAmplifiesSdlcDelayReduction) {
    // Sequential prefix adders do not overlap diagonally the way ripple
    // chains do, so their depths add per stage: the *absolute* fast-CPA
    // delay is not lower, but the SDLC-vs-accurate delay ratio tracks the
    // stage count and the relative saving grows (the ablation A5 effect).
    const CellLibrary lib = CellLibrary::generic_90nm();
    auto reduction = [&](AccumulationScheme scheme) {
        SdlcOptions opts;
        opts.scheme = scheme;
        const SynthesisReport acc =
            synthesize(build_accurate_multiplier(16, scheme).net, lib);
        const SynthesisReport apx = synthesize(build_sdlc_multiplier(16, opts).net, lib);
        return SynthesisReport::reduction(acc.delay_ps, apx.delay_ps);
    };
    EXPECT_GT(reduction(AccumulationScheme::kRowFastCpa),
              reduction(AccumulationScheme::kRowRipple) + 0.1);
}

TEST(SchemeCoverage, FastCpaCostsMoreAreaThanRipple) {
    // The prefix network spends gates on every stage.
    const CellLibrary lib = CellLibrary::generic_90nm();
    const SynthesisReport r =
        synthesize(build_accurate_multiplier(16, AccumulationScheme::kRowRipple).net, lib);
    const SynthesisReport f =
        synthesize(build_accurate_multiplier(16, AccumulationScheme::kRowFastCpa).net, lib);
    EXPECT_GT(f.area_um2, r.area_um2);
}

TEST(CostModel, ScaledLibraryScalesSynthesisLinearly) {
    const CellLibrary base = CellLibrary::generic_90nm();
    const CellLibrary half = base.scaled(0.5, 0.25, 0.4);
    const MultiplierNetlist m = build_accurate_multiplier(8);
    const SynthesisReport rb = synthesize(m.net, base);
    const SynthesisReport rh = synthesize(m.net, half);
    EXPECT_NEAR(rh.area_um2, 0.5 * rb.area_um2, 1e-9);
    EXPECT_NEAR(rh.delay_ps, 0.25 * rb.delay_ps, 1e-9);
    EXPECT_NEAR(rh.dynamic_energy_fj, 0.4 * rb.dynamic_energy_fj, 1e-6);
    EXPECT_NEAR(rh.leakage_nw, 0.5 * rb.leakage_nw, 1e-9);
}

TEST(CostModel, DepthIsLibraryIndependent) {
    const MultiplierNetlist m = build_sdlc_multiplier(8, {});
    const SynthesisReport r1 = synthesize(m.net, CellLibrary::generic_90nm());
    const SynthesisReport r2 =
        synthesize(m.net, CellLibrary::generic_90nm().scaled(2.0, 3.0, 4.0));
    EXPECT_EQ(r1.depth, r2.depth);
    EXPECT_EQ(r1.cells, r2.cells);
}

TEST(U256Fuzz, AddSubShiftAgreeWithInt128OnLowHalf) {
    Xoshiro256 rng(31337);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t a_lo = rng.next(), b_lo = rng.next();
        const unsigned __int128 a128 = a_lo, b128 = b_lo;
        const U256 s = add(U256(a_lo), U256(b_lo));
        const unsigned __int128 s128 = a128 + b128;
        EXPECT_EQ(s.w[0], static_cast<uint64_t>(s128));
        EXPECT_EQ(s.w[1], static_cast<uint64_t>(s128 >> 64));

        const unsigned k = static_cast<unsigned>(rng.below(128));
        const U256 sh = shl(U256(a_lo), k);
        const unsigned __int128 sh128 = a128 << k;
        EXPECT_EQ(sh.w[0], static_cast<uint64_t>(sh128)) << k;
        EXPECT_EQ(sh.w[1], static_cast<uint64_t>(sh128 >> 64)) << k;
    }
}

TEST(U256Fuzz, MulMatchesNativeProducts) {
    Xoshiro256 rng(99999);
    for (int i = 0; i < 2000; ++i) {
        const uint64_t a = rng.next(), b = rng.next();
        const U256 p = mul_128(a, 0, b, 0);
        const unsigned __int128 ref = static_cast<unsigned __int128>(a) * b;
        ASSERT_EQ(p.w[0], static_cast<uint64_t>(ref));
        ASSERT_EQ(p.w[1], static_cast<uint64_t>(ref >> 64));
        ASSERT_EQ(p.w[2] | p.w[3], 0u);
    }
}

}  // namespace
}  // namespace sdlc
