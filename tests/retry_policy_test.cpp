// RetryPolicy: the shared failure-handling vocabulary (attempt budgets,
// capped exponential backoff, deterministic jitter) used by the remote
// cache's peer cooldowns and the cluster coordinator's shard re-dispatch.
//
// Determinism is the point: every delay is a pure function of (policy,
// failures), so a fault scenario schedules identically run over run.
#include <gtest/gtest.h>

#include <cstdint>

#include "cluster/coordinator.h"
#include "util/retry.h"

namespace sdlc {
namespace {

RetryPolicy plain(int64_t base, int64_t max, double multiplier) {
    RetryPolicy p;
    p.base_delay_ms = base;
    p.max_delay_ms = max;
    p.multiplier = multiplier;
    p.jitter = 0.0;
    return p;
}

TEST(RetryPolicy, ExponentialGrowthFromBase) {
    const RetryPolicy p = plain(100, 10000, 2.0);
    EXPECT_EQ(p.delay_ms(0), 100);
    EXPECT_EQ(p.delay_ms(1), 100);
    EXPECT_EQ(p.delay_ms(2), 200);
    EXPECT_EQ(p.delay_ms(3), 400);
    EXPECT_EQ(p.delay_ms(4), 800);
}

TEST(RetryPolicy, GrowthSaturatesAtCap) {
    const RetryPolicy p = plain(1000, 8000, 2.0);
    EXPECT_EQ(p.delay_ms(4), 8000);
    EXPECT_EQ(p.delay_ms(50), 8000);   // no overflow at silly failure counts
    EXPECT_EQ(p.delay_ms(1000), 8000);
}

TEST(RetryPolicy, ZeroBaseMeansNoDelay) {
    const RetryPolicy p = plain(0, 0, 2.0);
    EXPECT_EQ(p.delay_ms(1), 0);
    EXPECT_EQ(p.delay_ms(7), 0);
}

TEST(RetryPolicy, SubUnityMultiplierNeverShrinks) {
    const RetryPolicy p = plain(500, 8000, 0.5);
    EXPECT_EQ(p.delay_ms(1), 500);
    EXPECT_EQ(p.delay_ms(5), 500);  // clamped to >= 1.0 growth
}

TEST(RetryPolicy, JitterIsDeterministicBoundedAndSeedDependent) {
    RetryPolicy p;
    p.base_delay_ms = 1000;
    p.max_delay_ms = 60000;
    p.multiplier = 2.0;
    p.jitter = 0.25;
    p.seed = RetryPolicy::seed_from("unix:/tmp/peer-a.sock");

    for (int failures = 1; failures <= 8; ++failures) {
        const int64_t d1 = p.delay_ms(failures);
        const int64_t d2 = p.delay_ms(failures);
        EXPECT_EQ(d1, d2) << "same inputs, same delay";
        // Nominal (jitter-free) value, for the [1 - j/2, 1 + j/2) band.
        RetryPolicy bare = p;
        bare.jitter = 0.0;
        const double nominal = static_cast<double>(bare.delay_ms(failures));
        EXPECT_GE(static_cast<double>(d1), nominal * 0.875 - 1.0);
        EXPECT_LE(static_cast<double>(d1), nominal * 1.125 + 1.0);
    }

    // Distinct identities desynchronize: across a window of failure counts
    // two peers cannot share the whole schedule.
    RetryPolicy other = p;
    other.seed = RetryPolicy::seed_from("unix:/tmp/peer-b.sock");
    bool any_different = false;
    for (int failures = 1; failures <= 8; ++failures) {
        any_different = any_different || other.delay_ms(failures) != p.delay_ms(failures);
    }
    EXPECT_TRUE(any_different);
}

TEST(RetryPolicy, SeedFromIsStable) {
    const uint64_t a = RetryPolicy::seed_from("host:9001");
    EXPECT_EQ(a, RetryPolicy::seed_from("host:9001"));
    EXPECT_NE(a, RetryPolicy::seed_from("host:9002"));
    EXPECT_NE(RetryPolicy::seed_from(""), RetryPolicy::seed_from("x"));
}

TEST(RetryPolicy, ExhaustedHonorsAttemptBudget) {
    RetryPolicy p;
    p.max_attempts = 3;
    EXPECT_FALSE(p.exhausted(0));
    EXPECT_FALSE(p.exhausted(2));
    EXPECT_TRUE(p.exhausted(3));
    EXPECT_TRUE(p.exhausted(4));

    p.max_attempts = 0;  // "never give up" (callers with a local fallback)
    EXPECT_FALSE(p.exhausted(1000000));
}

TEST(RetryPolicy, ClusterShardPolicyMatchesHistoricalRetryBudget) {
    // The coordinator demoted a shard to local execution when
    // failures > shard_retries; exhausted() must flip at the same point.
    cluster::ClusterOptions opts;
    opts.shard_retries = 2;
    const RetryPolicy p = opts.shard_policy();
    EXPECT_FALSE(p.exhausted(1));
    EXPECT_FALSE(p.exhausted(2));
    EXPECT_TRUE(p.exhausted(3));
    // Default: immediate requeue, exactly the pre-policy behavior.
    EXPECT_EQ(p.delay_ms(1), 0);

    cluster::ClusterOptions backoff = opts;
    backoff.shard_backoff_ms = 50;
    const RetryPolicy bp = backoff.shard_policy();
    EXPECT_GE(bp.delay_ms(1), 40);   // ~base, within the jitter band
    EXPECT_LE(bp.delay_ms(1), 60);
    EXPECT_LE(bp.delay_ms(100), 50 * 8 + 1);  // capped
}

}  // namespace
}  // namespace sdlc
