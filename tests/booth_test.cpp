// Tests for the radix-4 Booth accurate multiplier.
#include <gtest/gtest.h>

#include "baselines/accurate.h"
#include "baselines/booth.h"
#include "util/bitops.h"
#include "util/rng.h"

namespace sdlc {
namespace {

int64_t sign_extend(uint64_t raw, int width) {
    const uint64_t m = uint64_t{1} << (width - 1);
    return static_cast<int64_t>((raw ^ m) - m);
}

TEST(BoothDigit, RecodingTable) {
    // b = 0b110110 = 54, i.e. -10 as a 6-bit signed value.
    // Triplets (b_{2i+1}, b_{2i}, b_{2i-1}):
    //   i=0: (1,0,0) -> -2;  i=1: (0,1,1) -> +2;  i=2: (1,1,0) -> -1.
    // Recomposition: -2 + 2*4 - 1*16 = -10.
    const uint64_t b = 0b110110;
    EXPECT_EQ(booth_digit(b, 6, 0), -2);
    EXPECT_EQ(booth_digit(b, 6, 1), 2);
    EXPECT_EQ(booth_digit(b, 6, 2), -1);
}

TEST(BoothDigit, DigitsRecomposeOperand) {
    // sum(digit_i * 4^i) must equal the two's-complement value of b.
    for (int width : {4, 6, 8}) {
        const uint64_t side = uint64_t{1} << width;
        for (uint64_t b = 0; b < side; ++b) {
            int64_t v = 0;
            for (int i = 0; i < width / 2; ++i) {
                v += static_cast<int64_t>(booth_digit(b, width, i)) << (2 * i);
            }
            EXPECT_EQ(v, sign_extend(b, width)) << b;
        }
    }
}

TEST(BoothDigit, RejectsBadArguments) {
    EXPECT_THROW((void)booth_digit(0, 5, 0), std::invalid_argument);
    EXPECT_THROW((void)booth_digit(0, 8, 4), std::invalid_argument);
    EXPECT_THROW((void)booth_digit(0, 8, -1), std::invalid_argument);
}

class BoothExhaustive : public testing::TestWithParam<int> {};

TEST_P(BoothExhaustive, MatchesSignedProduct) {
    const int width = GetParam();
    const MultiplierNetlist m = build_booth_multiplier(width);
    const uint64_t side = uint64_t{1} << width;
    const uint64_t mask2n = mask_low(static_cast<unsigned>(2 * width));

    std::vector<uint64_t> as, bs;
    auto flush = [&] {
        if (as.empty()) return;
        const auto prods = simulate_batch(m, as, bs);
        for (size_t i = 0; i < as.size(); ++i) {
            const int64_t expect = sign_extend(as[i], width) * sign_extend(bs[i], width);
            ASSERT_EQ(prods[i], static_cast<uint64_t>(expect) & mask2n)
                << sign_extend(as[i], width) << "*" << sign_extend(bs[i], width);
        }
        as.clear();
        bs.clear();
    };
    for (uint64_t a = 0; a < side; ++a) {
        for (uint64_t b = 0; b < side; ++b) {
            as.push_back(a);
            bs.push_back(b);
            if (as.size() == 64) flush();
        }
    }
    flush();
}

INSTANTIATE_TEST_SUITE_P(Widths, BoothExhaustive, testing::Values(4, 6),
                         [](const auto& pinfo) { return "w" + std::to_string(pinfo.param); });

TEST(Booth, RandomWiderWidths) {
    for (int width : {8, 12, 16}) {
        const MultiplierNetlist m = build_booth_multiplier(width);
        const uint64_t mask = mask_low(static_cast<unsigned>(width));
        const uint64_t mask2n = mask_low(static_cast<unsigned>(2 * width));
        Xoshiro256 rng(width * 7);
        std::vector<uint64_t> as(64), bs(64);
        for (int pass = 0; pass < 8; ++pass) {
            for (int i = 0; i < 64; ++i) {
                as[i] = rng.next() & mask;
                bs[i] = rng.next() & mask;
            }
            const auto prods = simulate_batch(m, as, bs);
            for (int i = 0; i < 64; ++i) {
                const int64_t expect =
                    sign_extend(as[i], width) * sign_extend(bs[i], width);
                ASSERT_EQ(prods[i], static_cast<uint64_t>(expect) & mask2n)
                    << width << ": " << as[i] << "," << bs[i];
            }
        }
    }
}

TEST(Booth, AllSchemesSupported) {
    for (const AccumulationScheme scheme :
         {AccumulationScheme::kRowRipple, AccumulationScheme::kWallace,
          AccumulationScheme::kDadda, AccumulationScheme::kRowFastCpa}) {
        const MultiplierNetlist m = build_booth_multiplier(6, scheme);
        // -5 * 7 = -35 -> two's complement in 12 bits.
        const uint64_t a = static_cast<uint64_t>(-5) & 0x3f;
        EXPECT_EQ(simulate_one(m, a, 7), static_cast<uint64_t>(-35) & 0xfff)
            << accumulation_scheme_name(scheme);
    }
}

TEST(Booth, RejectsBadWidths) {
    EXPECT_THROW((void)build_booth_multiplier(5), std::invalid_argument);
    EXPECT_THROW((void)build_booth_multiplier(2), std::invalid_argument);
    EXPECT_THROW((void)build_booth_multiplier(64), std::invalid_argument);
}

TEST(Booth, HalvesPartialProductRows) {
    // Structural sanity: a Booth multiplier accumulates ~N/2 rows, so its
    // gate count undercuts the unsigned array multiplier's at wider widths.
    const MultiplierNetlist booth = build_booth_multiplier(16);
    const MultiplierNetlist array = build_accurate_multiplier(16);
    EXPECT_LT(booth.net.logic_gate_count(), array.net.logic_gate_count() * 2);
    EXPECT_GT(booth.net.logic_gate_count(), 0u);
}

}  // namespace
}  // namespace sdlc
