// Tests for the long-lived DSE service: strict request parsing, structured
// rejection of malformed/oversized lines, deterministic per-request event
// streams under request concurrency, the shared cross-request CostCache,
// cancellation, and drain-on-shutdown.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dse/evaluator.h"
#include "dse/export.h"
#include "dse/pareto.h"
#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/sink.h"
#include "util/json_parse.h"

namespace sdlc::serve {
namespace {

// ------------------------------------------------------------- fixtures ----

/// Sink that lets a test block until a request's terminal done event.
class RecordingSink final : public ResponseSink {
public:
    void write_line(const std::string& line) override {
        std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(line);
        if (line.find("\"event\": \"done\"") != std::string::npos) ++done_;
        cv_.notify_all();
    }

    /// Lines written once at least `n` done events have arrived. Fails the
    /// test (and returns what it has) after a generous timeout.
    std::vector<std::string> wait_done(size_t n = 1) {
        std::unique_lock<std::mutex> lock(mutex_);
        const bool completed = cv_.wait_for(lock, std::chrono::seconds(60),
                                            [&] { return done_ >= n; });
        EXPECT_TRUE(completed) << "timed out waiting for " << n << " done event(s)";
        return lines_;
    }

    [[nodiscard]] std::vector<std::string> lines() const {
        std::lock_guard<std::mutex> lock(mutex_);
        return lines_;
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<std::string> lines_;
    size_t done_ = 0;
};

/// A 3-point sweep request line (width 4, sdlc, row-ripple): small enough
/// that a test can run dozens of them.
std::string tiny_sweep_line(const std::string& id, const std::string& extra = "") {
    return "{\"id\": \"" + id +
           "\", \"spec\": {\"width\": 4, \"variants\": [\"sdlc\"], \"schemes\": [\"ripple\"]}" +
           extra + "}";
}

JsonValue parse_event(const std::string& line) {
    JsonValue v;
    std::string error;
    EXPECT_TRUE(json_parse(line, v, &error)) << line << " — " << error;
    return v;
}

/// Field access helpers for event assertions.
std::string event_kind(const JsonValue& e) {
    const JsonValue* kind = e.find("event");
    return kind != nullptr && kind->is_string() ? kind->string : "";
}

/// The subsequence of `lines` belonging to request `id`.
std::vector<std::string> stream_of(const std::vector<std::string>& lines,
                                   const std::string& id) {
    std::vector<std::string> out;
    for (const std::string& line : lines) {
        const JsonValue e = parse_event(line);
        if (const JsonValue* eid = e.find("id"); eid != nullptr && eid->string == id) {
            out.push_back(line);
        }
    }
    return out;
}

// ------------------------------------------------------ request parsing ----

TEST(ServeProtocol, MinimalRequestGetsDseToolDefaults) {
    SweepRequest req;
    RequestError err;
    ASSERT_TRUE(parse_request("{\"id\": \"r1\"}", kDefaultMaxRequestBytes, req, err))
        << err.message;
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.type, RequestType::kSweep);
    EXPECT_EQ(req.spec.count(), SweepSpec{}.count());
    EXPECT_EQ(req.objectives, default_objectives());
    EXPECT_TRUE(req.stream_points);
    EXPECT_FALSE(req.export_json);
    EXPECT_TRUE(req.eval.use_hw_cache);
}

TEST(ServeProtocol, FullSweepRequestParses) {
    const std::string line =
        "{\"id\": \"r2\", \"type\": \"sweep\","
        " \"spec\": {\"widths\": [4, 5], \"min_depth\": 2, \"max_depth\": 3,"
        "  \"variants\": [\"sdlc\", \"compensated\"], \"schemes\": [\"wallace\"]},"
        " \"eval\": {\"seed\": \"0xabc\", \"samples\": 1000, \"exhaustive_max_width\": 6,"
        "  \"dist\": \"sparse\", \"hardware\": false, \"hw_cache\": false},"
        " \"objectives\": [\"error\", \"energy\", \"maxred\"],"
        " \"stream_points\": false, \"export\": true}";
    SweepRequest req;
    RequestError err;
    ASSERT_TRUE(parse_request(line, kDefaultMaxRequestBytes, req, err)) << err.message;
    EXPECT_EQ(req.spec.widths, (std::vector<int>{4, 5}));
    EXPECT_EQ(req.spec.min_depth, 2);
    EXPECT_EQ(req.spec.max_depth, 3);
    EXPECT_EQ(req.spec.variants,
              (std::vector<MultiplierVariant>{MultiplierVariant::kSdlc,
                                              MultiplierVariant::kCompensated}));
    EXPECT_EQ(req.eval.seed, 0xabcu);
    EXPECT_EQ(req.eval.samples, 1000u);
    EXPECT_EQ(req.eval.exhaustive_max_width, 6);
    EXPECT_EQ(req.eval.distribution, OperandDistribution::kSparse);
    EXPECT_FALSE(req.eval.evaluate_hardware);
    EXPECT_FALSE(req.eval.use_hw_cache);
    EXPECT_EQ(req.objectives,
              (ObjectiveSet{Objective::kError, Objective::kEnergy, Objective::kMaxRed}));
    EXPECT_FALSE(req.stream_points);
    EXPECT_TRUE(req.export_json);
}

TEST(ServeProtocol, StrictRejection) {
    const struct {
        const char* line;
        const char* code;
    } cases[] = {
        {"{oops", "parse_error"},
        {"[]", "invalid_request"},                                  // not an object
        {"{\"type\": \"sweep\"}", "invalid_request"},               // missing id
        {"{\"id\": \"\"}", "invalid_request"},                      // empty id
        {"{\"id\": \"r\", \"typo\": 1}", "invalid_request"},        // unknown field
        {"{\"id\": \"r\", \"type\": \"dance\"}", "invalid_request"},
        {"{\"id\": \"r\", \"spec\": {\"midth\": 4}}", "invalid_request"},
        {"{\"id\": \"r\", \"spec\": {\"width\": 4, \"widths\": [4]}}", "invalid_request"},
        {"{\"id\": \"r\", \"spec\": {\"width\": 4.5}}", "invalid_request"},
        {"{\"id\": \"r\", \"eval\": {\"threads\": 4}}", "invalid_request"},
        {"{\"id\": \"r\", \"eval\": {\"seed\": -1}}", "invalid_request"},
        {"{\"id\": \"r\", \"eval\": {\"seed\": \"18446744073709551616\"}}",
         "invalid_request"},  // 2^64: out of range must not clamp
        {"{\"id\": \"r\", \"eval\": {\"seed\": \" 42\"}}", "invalid_request"},
        {"{\"id\": \"r\", \"eval\": {\"seed\": \"+42\"}}", "invalid_request"},
        {"{\"id\": \"r\", \"deadline_ms\": 0}", "invalid_request"},
        {"{\"id\": \"r\", \"deadline_ms\": -5}", "invalid_request"},
        // > 1e9 ms would overflow steady_clock arithmetic downstream.
        {"{\"id\": \"r\", \"deadline_ms\": 1000000001}", "invalid_request"},
        {"{\"id\": \"r\", \"deadline_ms\": \"18446744073709551615\"}", "invalid_request"},
        {"{\"id\": \"r\", \"chunk_bytes\": 0}", "invalid_request"},
        {"{\"id\": \"r\", \"chunk_bytes\": 15}", "invalid_request"},
        {"{\"id\": \"r\", \"objectives\": []}", "invalid_request"},
        {"{\"id\": \"r\", \"objectives\": [\"error\", \"error\"]}", "invalid_request"},
        {"{\"id\": \"r\", \"objectives\": [\"bogus\"]}", "invalid_request"},
        {"{\"id\": \"r\", \"type\": \"cancel\"}", "invalid_request"},  // missing target
        {"{\"id\": \"r\", \"type\": \"stats\", \"spec\": {}}", "invalid_request"},
    };
    for (const auto& c : cases) {
        SweepRequest req;
        RequestError err;
        EXPECT_FALSE(parse_request(c.line, kDefaultMaxRequestBytes, req, err)) << c.line;
        EXPECT_EQ(err.code, c.code) << c.line << " — " << err.message;
    }
}

TEST(ServeProtocol, SchemaErrorsKeepTheRequestId) {
    SweepRequest req;
    RequestError err;
    ASSERT_FALSE(parse_request("{\"id\": \"r9\", \"typo\": 1}", kDefaultMaxRequestBytes, req,
                               err));
    EXPECT_EQ(err.id, "r9") << "error events must be taggable with the client's id";
}

TEST(ServeProtocol, OversizedLineRejectedBeforeParsing) {
    std::string line = "{\"id\": \"big\", \"spec\": {\"widths\": [";
    while (line.size() < 4096) line += "4,";
    line += "4]}}";
    SweepRequest req;
    RequestError err;
    EXPECT_FALSE(parse_request(line, /*max_bytes=*/1024, req, err));
    EXPECT_EQ(err.code, "too_large");
    // The same line passes with the default cap (it is valid JSON).
    EXPECT_TRUE(parse_request(line, kDefaultMaxRequestBytes, req, err)) << err.message;
}

TEST(ServeProtocol, EventLinesAreParseableJson) {
    const ServiceStats stats;
    for (const std::string& line :
         {accepted_event("r", RequestType::kSweep, 60, "widths 8..8"),
          error_event("r", "parse_error", "broke \"here\"\nand here"),
          stats_event("s", stats), done_event("r", true)}) {
        EXPECT_EQ(line.find('\n'), std::string::npos) << "events must be single-line";
        (void)parse_event(line);
    }
}

// --------------------------------------------------------------- service ----

TEST(SweepService, MalformedAndOversizedLinesGetStructuredErrors) {
    ServiceOptions opts;
    opts.max_request_bytes = 256;
    SweepService service(opts);

    auto bad = std::make_shared<RecordingSink>();
    EXPECT_TRUE(service.submit_line("{not json", bad));
    auto events = bad->wait_done();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(event_kind(parse_event(events[0])), "error");
    EXPECT_EQ(parse_event(events[0]).find("code")->string, "parse_error");
    EXPECT_EQ(event_kind(parse_event(events[1])), "done");
    EXPECT_FALSE(parse_event(events[1]).find("ok")->boolean);

    auto big = std::make_shared<RecordingSink>();
    EXPECT_TRUE(service.submit_line(std::string(1024, ' ') + "{}", big));
    events = big->wait_done();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(parse_event(events[0]).find("code")->string, "too_large");

    // An enumerable-but-invalid spec fails after parsing, at validation.
    auto invalid = std::make_shared<RecordingSink>();
    EXPECT_TRUE(service.submit_line("{\"id\": \"v\", \"spec\": {\"width\": 40}}", invalid));
    events = invalid->wait_done();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(parse_event(events[0]).find("code")->string, "invalid_request");
}

TEST(SweepService, SharedCacheHitsGrowAcrossRequests) {
    SweepService service;
    std::vector<std::string> summaries;
    for (int i = 0; i < 3; ++i) {
        auto sink = std::make_shared<RecordingSink>();
        ASSERT_TRUE(service.submit_line(tiny_sweep_line("r" + std::to_string(i)), sink));
        for (const std::string& line : sink->wait_done()) {
            if (event_kind(parse_event(line)) == "summary") summaries.push_back(line);
        }
    }
    ASSERT_EQ(summaries.size(), 3u);
    const JsonValue cold = parse_event(summaries[0]);
    const JsonValue warm1 = parse_event(summaries[1]);
    const JsonValue warm2 = parse_event(summaries[2]);
    EXPECT_EQ(cold.find("hw_cache")->find("hits")->number, 0.0);
    EXPECT_GT(cold.find("hw_cache")->find("misses")->number, 0.0);
    // The second identical request is served entirely from the shared cache.
    EXPECT_GT(warm1.find("hw_cache")->find("hits")->number, 0.0);
    EXPECT_EQ(warm1.find("hw_cache")->find("misses")->number, 0.0);
    EXPECT_GT(warm2.find("hw_cache")->find("hits")->number, 0.0);

    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 3u);
    EXPECT_GT(stats.cache_hits, 0u);
    EXPECT_GT(stats.cache_entries, 0u);
    EXPECT_EQ(stats.points_evaluated, 9u);
}

TEST(SweepService, PointStreamsAreIdenticalColdAndWarm) {
    SweepService service;
    std::vector<std::vector<std::string>> point_streams;
    for (int i = 0; i < 2; ++i) {
        auto sink = std::make_shared<RecordingSink>();
        ASSERT_TRUE(service.submit_line(tiny_sweep_line("r" + std::to_string(i)), sink));
        std::vector<std::string> points;
        for (const std::string& line : sink->wait_done()) {
            const JsonValue e = parse_event(line);
            if (event_kind(e) == "point") {
                // Strip the id field by re-serializing just the point payload
                // position: the raw line differs only in the id.
                points.push_back(line.substr(line.find("\"index\"")));
            }
        }
        point_streams.push_back(std::move(points));
    }
    ASSERT_EQ(point_streams[0].size(), 3u);
    EXPECT_EQ(point_streams[0], point_streams[1])
        << "a warm cache must not change any streamed point";
}

TEST(SweepService, ConcurrentStreamsMatchSequentialByteForByte) {
    // Two distinct requests, every stream captured twice: once submitted
    // sequentially (wait between), once with both in flight. The cache is
    // fully warmed first so every run sees the same pre-request cache
    // state — with that fixed, each request's stream must be
    // byte-identical however the service interleaves the work.
    ServiceOptions opts;
    opts.request_workers = 2;
    SweepService service(opts);

    const std::string line_a = tiny_sweep_line("a", ", \"export\": true");
    const std::string line_b =
        "{\"id\": \"b\", \"spec\": {\"width\": 5, \"variants\": [\"compensated\"],"
        " \"schemes\": [\"dadda\"]}, \"objectives\": [\"error\", \"energy\"]}";
    for (const std::string& line : {line_a, line_b}) {  // warm the cache
        auto sink = std::make_shared<RecordingSink>();
        ASSERT_TRUE(service.submit_line(line, sink));
        sink->wait_done();
    }

    auto seq_a = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(line_a, seq_a));
    seq_a->wait_done();
    auto seq_b = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(line_b, seq_b));
    seq_b->wait_done();

    auto con_a = std::make_shared<RecordingSink>();
    auto con_b = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(line_a, con_a));
    ASSERT_TRUE(service.submit_line(line_b, con_b));
    con_a->wait_done();
    con_b->wait_done();

    EXPECT_EQ(seq_a->lines(), con_a->lines());
    EXPECT_EQ(seq_b->lines(), con_b->lines());
}

TEST(SweepService, ExportPayloadMatchesBatchExport) {
    // The result event must embed byte-for-byte what dse_tool --json would
    // write for the same sweep against a cold cache.
    SweepSpec spec;
    spec.widths = {4};
    spec.variants = {MultiplierVariant::kSdlc};
    spec.schemes = {AccumulationScheme::kRowRipple};
    EvalOptions eval;
    SweepStats stats;
    const std::vector<DesignPoint> points = evaluate_sweep(spec, eval, &stats);
    const ParetoResult pareto = pareto_analysis(objective_matrix(points));
    const std::string expected = dse_to_json(points, pareto.rank, stats);

    SweepService service;
    auto sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("x", ", \"export\": true"), sink));
    std::string payload;
    for (const std::string& line : sink->wait_done()) {
        const JsonValue e = parse_event(line);
        if (event_kind(e) == "result") payload = e.find("data")->string;
    }
    EXPECT_EQ(payload, expected);
}

TEST(SweepService, StatsRequestReportsQueueAndCache) {
    SweepService service;
    auto sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line("{\"id\": \"s\", \"type\": \"stats\"}", sink));
    const auto events = sink->wait_done();
    ASSERT_EQ(events.size(), 2u);
    const JsonValue stats = parse_event(events[0]);
    EXPECT_EQ(event_kind(stats), "stats");
    ASSERT_NE(stats.find("queue_depth"), nullptr);
    ASSERT_NE(stats.find("hw_cache"), nullptr);
    EXPECT_EQ(stats.find("hw_cache")->find("hits")->number, 0.0);
    EXPECT_TRUE(parse_event(events[1]).find("ok")->boolean);
}

TEST(SweepService, CancelStopsAQueuedSweep) {
    // One worker: the first sweep occupies it while the victim waits in
    // the queue, so the cancel lands before the victim starts.
    ServiceOptions opts;
    opts.request_workers = 1;
    SweepService service(opts);

    auto first = std::make_shared<RecordingSink>();
    auto victim = std::make_shared<RecordingSink>();
    auto cancel = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line("{\"id\": \"busy\", \"spec\": {\"width\": 8}}", first));
    ASSERT_TRUE(service.submit_line(tiny_sweep_line("victim"), victim));
    ASSERT_TRUE(service.submit_line(
        "{\"id\": \"c\", \"type\": \"cancel\", \"target\": \"victim\"}", cancel));

    const auto cancel_events = cancel->wait_done();
    ASSERT_EQ(cancel_events.size(), 1u) << "cancel is acknowledged immediately";
    EXPECT_TRUE(parse_event(cancel_events[0]).find("ok")->boolean);

    const auto victim_events = victim->wait_done();
    bool saw_cancelled = false;
    for (const std::string& line : victim_events) {
        const JsonValue e = parse_event(line);
        if (event_kind(e) == "error") {
            EXPECT_EQ(e.find("code")->string, "cancelled");
            saw_cancelled = true;
        }
        if (event_kind(e) == "point") FAIL() << "cancelled sweep must not stream points";
    }
    EXPECT_TRUE(saw_cancelled);
    first->wait_done();  // the busy sweep itself completes normally
    EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(SweepService, CancelUnknownTargetFails) {
    SweepService service;
    auto sink = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line(
        "{\"id\": \"c\", \"type\": \"cancel\", \"target\": \"ghost\"}", sink));
    const auto events = sink->wait_done();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(parse_event(events[0]).find("code")->string, "unknown_target");
    EXPECT_FALSE(parse_event(events[1]).find("ok")->boolean);
}

TEST(SweepService, ShutdownDrainsEveryQueuedRequest) {
    // One worker and several queued sweeps: the shutdown request is at the
    // back of the queue, so "drain" means every request ahead of it still
    // produces its full stream; later submissions are refused.
    ServiceOptions opts;
    opts.request_workers = 1;
    SweepService service(opts);

    std::vector<std::shared_ptr<RecordingSink>> sinks;
    for (int i = 0; i < 4; ++i) {
        sinks.push_back(std::make_shared<RecordingSink>());
        ASSERT_TRUE(service.submit_line(tiny_sweep_line("d" + std::to_string(i)), sinks.back()));
    }
    auto quit = std::make_shared<RecordingSink>();
    ASSERT_TRUE(service.submit_line("{\"id\": \"q\", \"type\": \"shutdown\"}", quit));
    service.shutdown();  // blocks until the queue is drained and workers joined

    for (int i = 0; i < 4; ++i) {
        const auto events = sinks[i]->lines();
        ASSERT_FALSE(events.empty());
        bool completed = false;
        for (const std::string& line : events) {
            const JsonValue e = parse_event(line);
            if (event_kind(e) == "done") completed = e.find("ok")->boolean;
        }
        EXPECT_TRUE(completed) << "queued request d" << i << " must finish before shutdown";
    }
    EXPECT_TRUE(parse_event(quit->lines().back()).find("ok")->boolean);
    EXPECT_TRUE(service.shutdown_requested());

    auto late = std::make_shared<RecordingSink>();
    EXPECT_FALSE(service.submit_line(tiny_sweep_line("late"), late));
    EXPECT_EQ(parse_event(late->lines().front()).find("code")->string, "shutting_down");
}

}  // namespace
}  // namespace sdlc::serve
