// Differential battery: MultiplyKernel (the fast software path the DSE
// error sweep runs on) against gate-level netlist simulation (the hardware
// the DSE cost model synthesizes), for every MultiplierConfig in the
// width-2..8 sweep grid.
//
// kernels_test proves kernel == functional model; sdlc_netlist_test proves
// netlist == functional model for the SDLC generator. This suite closes
// the remaining gap end to end at the DSE granularity: the exact
// configuration objects a sweep enumerates — every width, depth, variant
// AND accumulation scheme — produce a netlist whose simulated product is
// bit-identical to the kernel the evaluator actually ran. A mismatch here
// means the cost model and the error model describe different hardware.
//
// Exhaustive over the full operand square up to width 6; fixed-seed random
// operand streams at widths 7 and 8 (the square is 65k pairs there — the
// random stream plus the exhaustive smaller widths already pin every
// structural path).
#include <gtest/gtest.h>

#include <vector>

#include "api/approx_multiplier.h"
#include "arith/mul_netlist.h"
#include "core/kernels.h"
#include "core/kernels_sliced.h"
#include "dse/sweep.h"
#include "util/rng.h"

namespace sdlc {
namespace {

/// Drains `as`/`bs` through one 64-lane simulator pass and compares every
/// lane against the kernel.
void flush_batch(const MultiplierNetlist& m, const MultiplyKernel& kernel,
                 std::vector<uint64_t>& as, std::vector<uint64_t>& bs) {
    if (as.empty()) return;
    const std::vector<uint64_t> products = simulate_batch(m, as, bs);
    for (size_t i = 0; i < as.size(); ++i) {
        ASSERT_EQ(products[i], kernel(as[i], bs[i]))
            << m.label << ": " << as[i] << " * " << bs[i];
    }
    as.clear();
    bs.clear();
}

void expect_netlist_matches_kernel(const MultiplierConfig& config) {
    const ApproxMultiplier facade(config);
    const MultiplierNetlist m = facade.build_netlist();
    const MultiplyKernel kernel(config);
    std::vector<uint64_t> as, bs;
    as.reserve(64);
    bs.reserve(64);

    if (config.width <= 6) {
        const uint64_t side = uint64_t{1} << config.width;
        for (uint64_t a = 0; a < side; ++a) {
            for (uint64_t b = 0; b < side; ++b) {
                as.push_back(a);
                bs.push_back(b);
                if (as.size() == 64) flush_batch(m, kernel, as, bs);
            }
        }
    } else {
        // Seed from the configuration so every config gets its own
        // reproducible stream, plus the corner operands.
        const uint64_t mask = (uint64_t{1} << config.width) - 1;
        for (const uint64_t corner : {uint64_t{0}, uint64_t{1}, mask, mask - 1, mask >> 1}) {
            as.push_back(corner);
            bs.push_back(mask);
            as.push_back(mask);
            bs.push_back(corner);
        }
        Xoshiro256 rng(0xd1ff5eed ^ (static_cast<uint64_t>(config.width) << 16) ^
                       (static_cast<uint64_t>(config.depth) << 8) ^
                       (static_cast<uint64_t>(static_cast<int>(config.variant)) << 4) ^
                       static_cast<uint64_t>(static_cast<int>(config.scheme)));
        for (int i = 0; i < 1024; ++i) {
            as.push_back(rng.next() & mask);
            bs.push_back(rng.next() & mask);
            if (as.size() == 64) flush_batch(m, kernel, as, bs);
        }
    }
    flush_batch(m, kernel, as, bs);
}

TEST(KernelNetlistDifferential, SweepGridWidths2To8) {
    SweepSpec spec;
    spec.widths.clear();
    for (int w = 2; w <= 8; ++w) spec.widths.push_back(w);
    const std::vector<MultiplierConfig> grid = spec.enumerate();
    // The default axes at these widths: (accurate + 2 variants * depths
    // 2..w) * 4 schemes per width.
    ASSERT_EQ(grid.size(), 252u);
    for (const MultiplierConfig& config : grid) {
        SCOPED_TRACE(ApproxMultiplier(config).describe());
        expect_netlist_matches_kernel(config);
        if (HasFatalFailure()) return;
    }
}

/// Closes the same gap for the bit-sliced engine: for every eligible grid
/// config, a sliced block's 64 products match the simulated netlist
/// directly (not just the scalar kernel — kernels_sliced_test covers that
/// exhaustively). A few `a` stripes with one aligned and one unaligned
/// block per stripe pin the transpose and lane-extraction paths against
/// the hardware model.
TEST(KernelNetlistDifferential, SlicedEngineMatchesNetlist) {
    SweepSpec spec;
    spec.widths.clear();
    for (int w = 2; w <= 8; ++w) spec.widths.push_back(w);
    for (const MultiplierConfig& config : spec.enumerate()) {
        if (!SlicedMultiplyKernel::eligible(config)) continue;
        SCOPED_TRACE(ApproxMultiplier(config).describe());
        const MultiplierNetlist m = ApproxMultiplier(config).build_netlist();
        const SlicedMultiplyKernel sliced(config);
        const uint64_t side = uint64_t{1} << config.width;
        const unsigned lanes = sliced.natural_lanes();
        uint64_t out[64];
        std::vector<uint64_t> as, bs;
        for (const uint64_t a : {uint64_t{0}, side / 2, side - 1}) {
            // One aligned prepared block...
            SlicedMultiplyKernel::Prepared prep;
            sliced.prepare(a, prep);
            const uint64_t b0 = side >= 2 * lanes ? side - lanes : 0;
            sliced.multiply_block_prepared(prep, b0, out);
            as.assign(lanes, a);
            bs.resize(lanes);
            for (unsigned l = 0; l < lanes; ++l) bs[l] = b0 + l;
            std::vector<uint64_t> products = simulate_batch(m, as, bs);
            for (unsigned l = 0; l < lanes; ++l) {
                ASSERT_EQ(products[l], out[l]) << "aligned a=" << a << " b=" << b0 + l;
            }
            // ...and one misaligned partial block through the general path.
            const unsigned partial = lanes > 1 ? lanes - 1 : 1;
            const uint64_t b1 = side > partial + 1 ? 1 : 0;
            sliced.multiply_block(a, b1, partial, out);
            as.assign(partial, a);
            bs.resize(partial);
            for (unsigned l = 0; l < partial; ++l) bs[l] = b1 + l;
            products = simulate_batch(m, as, bs);
            for (unsigned l = 0; l < partial; ++l) {
                ASSERT_EQ(products[l], out[l]) << "unaligned a=" << a << " b=" << b1 + l;
            }
        }
        if (HasFatalFailure()) return;
    }
}

}  // namespace
}  // namespace sdlc
