#!/usr/bin/env bash
# serve_tool --client / cache_tool exit-status contract, end to end over a
# real server:
#   0  every request succeeded
#   1  the server answered an error event / a request failed
#   2  usage error
#   3  transport failure (cannot connect, stream dropped early)
# Usage: serve_client_exit.sh /path/to/serve_tool /path/to/cache_tool /path/to/dse_tool
set -u

tool="${1:?usage: serve_client_exit.sh serve_tool cache_tool dse_tool}"
cache="${2:?usage: serve_client_exit.sh serve_tool cache_tool dse_tool}"
dse="${3:?usage: serve_client_exit.sh serve_tool cache_tool dse_tool}"
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT
cd "$workdir"

failures=0
check_exit() { # name expected actual
    if [ "$3" -ne "$2" ]; then
        echo "FAIL: $1: expected exit $2, got $3" >&2
        failures=$((failures + 1))
    else
        echo "ok: $1 (exit $3)"
    fi
}

sock="$workdir/dse.sock"
"$tool" --listen "$sock" --threads 1 2>server.log &
server=$!
# Generous bind wait: ctest -j on a loaded box can starve the server
# briefly at startup.
for _ in $(seq 600); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "FAIL: server never bound $sock" >&2; cat server.log >&2; exit 1; }

# A successful tiny sweep exits 0.
echo '{"id":"ok","spec":{"width":4,"variants":["sdlc"],"schemes":["ripple"]}}' >good.ndjson
"$tool" --client good.ndjson --socket "$sock" --quiet
check_exit "successful sweep" 0 $?

# A server-side error event (unparseable request) must exit non-zero.
echo 'this is not json' >bad.ndjson
"$tool" --client bad.ndjson --socket "$sock" --quiet
check_exit "parse error from server" 1 $?

# A schema-invalid request (error event with the request's id) too.
echo '{"id":"r","spec":{"width":4},"typo":true}' >invalid.ndjson
"$tool" --client invalid.ndjson --socket "$sock" --quiet
check_exit "invalid request" 1 $?

# A failing request among successes still fails the whole run.
cat >mixed.ndjson <<'EOF'
{"id":"good1","spec":{"width":4,"variants":["sdlc"],"schemes":["ripple"]}}
{"id":"bad1","spec":{"width":99}}
EOF
"$tool" --client mixed.ndjson --socket "$sock" --quiet
check_exit "mixed success + failure" 1 $?

# A deadline-exceeded sweep is a failure to the caller.
echo '{"id":"late","spec":{"width":8},"deadline_ms":1}' >late.ndjson
"$tool" --client late.ndjson --socket "$sock" --quiet
check_exit "deadline exceeded" 1 $?

# Two chunked exports multiplexed over one connection: per-id reassembly
# must keep the interleaved streams apart and exit 0.
cat >multi.ndjson <<'EOF'
{"id":"m1","spec":{"width":4,"variants":["sdlc"],"schemes":["ripple"]},"export":true,"chunk_bytes":64}
{"id":"m2","spec":{"width":4,"variants":["sdlc"],"schemes":["wallace"]},"export":true,"chunk_bytes":64}
EOF
"$tool" --client multi.ndjson --socket "$sock" --quiet --output multi.json
check_exit "multiplexed chunked exports" 0 $?
if [ ! -s multi.json ]; then
    echo "FAIL: multiplexed chunked export produced no output file" >&2
    failures=$((failures + 1))
fi

# Chunked export reassembly still exits 0 and writes the payload.
echo '{"id":"chunky","spec":{"width":4,"variants":["sdlc"],"schemes":["ripple"]},"export":true,"chunk_bytes":128}' >chunky.ndjson
"$tool" --client chunky.ndjson --socket "$sock" --quiet --output chunked.json
rc=$?
check_exit "chunked export" 0 $rc
if [ ! -s chunked.json ]; then
    echo "FAIL: chunked export produced no output file" >&2
    failures=$((failures + 1))
fi

# --scrape robustness: a healthy server yields clean exposition text (0)
# carrying the uptime/build_info gauges; pointing serve_tool's scraper at a
# cache daemon (wrong dialect) is a transport-grade failure (3), and so is
# pointing cache_tool's scraper at a serve endpoint.
"$tool" --scrape --socket "$sock" >scrape.txt
check_exit "scrape healthy server" 0 $?
grep -q '^sdlc_serve_build_info{version=' scrape.txt || {
    echo "FAIL: scrape output lacks sdlc_serve_build_info" >&2
    failures=$((failures + 1))
}
grep -q '^sdlc_serve_uptime_seconds ' scrape.txt || {
    echo "FAIL: scrape output lacks sdlc_serve_uptime_seconds" >&2
    failures=$((failures + 1))
}
xsock="$workdir/xwire-cache.sock"
"$cache" --listen "$xsock" 2>/dev/null &
xwire_cache=$!
for _ in $(seq 600); do [ -S "$xsock" ] && break; sleep 0.1; done
"$tool" --scrape --socket "$xsock" 2>/dev/null
check_exit "serve scrape against cache daemon" 3 $?
"$cache" --scrape --socket "$sock" 2>/dev/null
check_exit "cache scrape against serve server" 3 $?
"$cache" --scrape --socket "$xsock" >cscrape.txt
check_exit "cache scrape healthy daemon" 0 $?
grep -q '^sdlc_cache_build_info{version=' cscrape.txt || {
    echo "FAIL: cache scrape lacks sdlc_cache_build_info" >&2
    failures=$((failures + 1))
}
"$cache" --shutdown --socket "$xsock" >/dev/null
wait "$xwire_cache" 2>/dev/null

echo '{"id":"q","type":"shutdown"}' >quit.ndjson
"$tool" --client quit.ndjson --socket "$sock" --quiet
check_exit "shutdown request" 0 $?
wait "$server"
check_exit "server exit" 0 $?

# Transport failure: nothing listens here any more.
"$tool" --client good.ndjson --socket "$sock" --quiet 2>/dev/null
check_exit "connect to dead socket" 3 $?

# Usage errors are exit 2, even for malformed numeric option values.
"$tool" --request-workers abc </dev/null 2>/dev/null
check_exit "non-numeric option value" 2 $?
"$tool" --client good.ndjson 2>/dev/null
check_exit "client without destination" 2 $?

# --cache-peers usage contract: malformed peer specs and misplaced flags
# are usage errors (2) before anything binds or runs.
"$tool" --cache-peers "no-port-here" </dev/null 2>/dev/null
check_exit "malformed cache peer spec" 2 $?
"$tool" --cache-peers "unix:" </dev/null 2>/dev/null
check_exit "empty unix cache peer path" 2 $?
"$tool" --cache-peers "," </dev/null 2>/dev/null
check_exit "empty cache peer list" 2 $?
"$tool" --cache-peers 2>/dev/null
check_exit "cache peers without value" 2 $?
"$tool" --client good.ndjson --socket "$sock" --cache-peers unix:x.sock 2>/dev/null
check_exit "cache peers in client mode" 2 $?
"$tool" --scrape --socket "$sock" --cache-timeout-ms 10 2>/dev/null
check_exit "cache timeout in scrape mode" 2 $?
"$tool" --cache-timeout-ms abc </dev/null 2>/dev/null
check_exit "non-numeric cache timeout" 2 $?

# Cluster flag usage contract, serve_tool: malformed worker specs, shard
# knobs without a worker list, and cluster flags in client/scrape mode are
# usage errors (2) before anything binds or runs.
"$tool" --workers "no-port-here" </dev/null 2>/dev/null
check_exit "malformed worker spec" 2 $?
"$tool" --workers "," </dev/null 2>/dev/null
check_exit "empty worker list" 2 $?
"$tool" --shards 8 </dev/null 2>/dev/null
check_exit "shards without workers" 2 $?
"$tool" --shard-timeout-ms 100 </dev/null 2>/dev/null
check_exit "shard timeout without workers" 2 $?
"$tool" --shard-retries 1 </dev/null 2>/dev/null
check_exit "shard retries without workers" 2 $?
"$tool" --workers unix:w.sock --shards 0 </dev/null 2>/dev/null
check_exit "zero shards" 2 $?
"$tool" --workers unix:w.sock --shards abc </dev/null 2>/dev/null
check_exit "non-numeric shards" 2 $?
"$tool" --client good.ndjson --socket "$sock" --workers unix:w.sock 2>/dev/null
check_exit "workers in client mode" 2 $?
"$tool" --scrape --socket "$sock" --shards 4 2>/dev/null
check_exit "shards in scrape mode" 2 $?
"$tool" --shard-backoff-ms 50 </dev/null 2>/dev/null
check_exit "shard backoff without workers" 2 $?
"$tool" --client good.ndjson --socket "$sock" --shard-backoff-ms 50 2>/dev/null
check_exit "shard backoff in client mode" 2 $?

# Replication flag usage contract: --cache-replicas needs a peer list and a
# sane value, and is a server-side option.
"$tool" --cache-replicas 2 </dev/null 2>/dev/null
check_exit "cache replicas without peers" 2 $?
"$tool" --cache-peers unix:x.sock --cache-replicas 0 </dev/null 2>/dev/null
check_exit "zero cache replicas" 2 $?
"$tool" --cache-peers unix:x.sock --cache-replicas abc </dev/null 2>/dev/null
check_exit "non-numeric cache replicas" 2 $?
"$tool" --client good.ndjson --socket "$sock" --cache-replicas 2 2>/dev/null
check_exit "cache replicas in client mode" 2 $?

# Observability flag usage contract: --access-log and --trace-out are
# server-side options; dangling values are usage errors.
"$tool" --client good.ndjson --socket "$sock" --access-log a.log 2>/dev/null
check_exit "access log in client mode" 2 $?
"$tool" --scrape --socket "$sock" --trace-out t.json 2>/dev/null
check_exit "trace out in scrape mode" 2 $?
"$tool" --access-log 2>/dev/null
check_exit "access log without value" 2 $?
"$cache" --access-log a.log --stats --socket x.sock 2>/dev/null
check_exit "cache_tool access log in client mode" 2 $?
"$dse" --trace-out 2>/dev/null
check_exit "dse_tool trace-out without value" 2 $?

# Cluster flag usage contract, dse_tool (exit 2 = usage, before any sweep).
"$dse" --workers "no-port-here" 2>/dev/null
check_exit "dse_tool malformed worker spec" 2 $?
"$dse" --workers "," 2>/dev/null
check_exit "dse_tool empty worker list" 2 $?
"$dse" --shards 8 2>/dev/null
check_exit "dse_tool shards without workers" 2 $?
"$dse" --shard-timeout-ms 100 2>/dev/null
check_exit "dse_tool shard timeout without workers" 2 $?
"$dse" --shard-retries 1 2>/dev/null
check_exit "dse_tool shard retries without workers" 2 $?
"$dse" --workers unix:w.sock --shards 0 2>/dev/null
check_exit "dse_tool zero shards" 2 $?
"$dse" --shard-backoff-ms 50 2>/dev/null
check_exit "dse_tool shard backoff without workers" 2 $?
"$dse" --cache-replicas 2 2>/dev/null
check_exit "dse_tool cache replicas without peers" 2 $?
"$dse" --cache-peers unix:x.sock --cache-replicas 0 2>/dev/null
check_exit "dse_tool zero cache replicas" 2 $?

# End to end: a coordinator serving a client sweep through one worker
# replica exits 0 all the way down.
wsock="$workdir/worker.sock"
"$tool" --listen "$wsock" --threads 1 2>/dev/null &
worker=$!
for _ in $(seq 600); do [ -S "$wsock" ] && break; sleep 0.1; done
coord="$workdir/coord.sock"
"$tool" --listen "$coord" --threads 1 --workers "unix:$wsock" --shards 2 \
    --access-log coord_access.log 2>/dev/null &
coordinator=$!
for _ in $(seq 600); do [ -S "$coord" ] && break; sleep 0.1; done
"$tool" --client good.ndjson --socket "$coord" --quiet
check_exit "sweep through coordinator" 0 $?
echo '{"id":"q","type":"shutdown"}' >quitc.ndjson
"$tool" --client quitc.ndjson --socket "$coord" --quiet
wait "$coordinator"
check_exit "coordinator exit" 0 $?
# One structured access-log line per request: the sweep and the shutdown.
access_lines=$(wc -l <coord_access.log)
if [ "${access_lines:-0}" -ne 2 ]; then
    echo "FAIL: coordinator access log has $access_lines lines, want 2" >&2
    failures=$((failures + 1))
else
    echo "ok: coordinator access log (2 lines)"
fi
grep -q '"verb": "sweep"' coord_access.log || {
    echo "FAIL: access log lacks the sweep line" >&2
    failures=$((failures + 1))
}
"$tool" --client quitc.ndjson --socket "$wsock" --quiet
wait "$worker"
check_exit "worker exit" 0 $?

# A server pointed at unreachable cache peers still serves correctly (the
# tier degrades; it never becomes a dependency).
"$tool" --listen "$workdir/degraded.sock" --threads 1 \
    --cache-peers "unix:$workdir/no-daemon-here.sock" 2>/dev/null &
degraded=$!
for _ in $(seq 600); do [ -S "$workdir/degraded.sock" ] && break; sleep 0.1; done
"$tool" --client good.ndjson --socket "$workdir/degraded.sock" --quiet
check_exit "sweep with unreachable cache peers" 0 $?
echo '{"id":"q","type":"shutdown"}' >quit2.ndjson
"$tool" --client quit2.ndjson --socket "$workdir/degraded.sock" --quiet
wait "$degraded"
check_exit "degraded server exit" 0 $?

# ---- HTTP front door: negatives over raw sockets + usage contract ----

# Raw HTTP/1.1 exchange over /dev/tcp; requests carry Connection: close so
# the server ends the response with EOF and `cat` terminates. Connects are
# retried briefly: under `ctest -j` load the accept loop can lag a moment.
http_exchange() { # port payload
    for _ in $(seq 50); do
        if exec 3<>"/dev/tcp/127.0.0.1/$1"; then
            printf '%s' "$2" >&3
            cat <&3
            exec 3<&- 3>&-
            return 0
        fi
        sleep 0.1
    done 2>/dev/null
    return 1
}
check_http() { # name expected_status response
    status=$(printf '%s' "$3" | head -n1 | tr -d '\r' | cut -d' ' -f2)
    if [ "${status:-none}" != "$2" ]; then
        echo "FAIL: $1: expected HTTP $2, got ${status:-<none>}" >&2
        failures=$((failures + 1))
    else
        echo "ok: $1 (HTTP $status)"
    fi
}
CRLF=$'\r\n'

printf 'contract-secret\n' >token.txt
hsock="$workdir/http.sock"
"$tool" --listen "$hsock" --threads 1 --listen-http 127.0.0.1:0 \
    --auth-token-file token.txt --quota-rps 0.001 --quota-burst 1 \
    2>http_server.log &
http_server=$!
hport=""
for _ in $(seq 600); do
    hport=$(sed -n 's/^serve_tool: http listening on tcp:127\.0\.0\.1:\([0-9]*\)$/\1/p' http_server.log)
    [ -n "$hport" ] && break
    sleep 0.1
done
if [ -z "$hport" ]; then
    echo "FAIL: HTTP listener never reported its port" >&2
    cat http_server.log >&2
    failures=$((failures + 1))
else
    # /healthz needs no token; everything else without one is 401.
    resp=$(http_exchange "$hport" "GET /healthz HTTP/1.1${CRLF}Host: x${CRLF}Connection: close${CRLF}${CRLF}")
    check_http "healthz without token" 200 "$resp"
    resp=$(http_exchange "$hport" "GET /metrics HTTP/1.1${CRLF}Host: x${CRLF}Connection: close${CRLF}${CRLF}")
    check_http "metrics without token" 401 "$resp"
    printf '%s' "$resp" | grep -qi '^www-authenticate: Bearer' || {
        echo "FAIL: 401 lacks a WWW-Authenticate challenge" >&2
        failures=$((failures + 1))
    }
    body='{"id":"h1","spec":{"width":4,"variants":["sdlc"],"schemes":["ripple"]}}'
    post="POST /v1/sweep HTTP/1.1${CRLF}Host: x${CRLF}Connection: close${CRLF}Content-Length: ${#body}${CRLF}"
    resp=$(http_exchange "$hport" "${post}${CRLF}${body}")
    check_http "sweep without token" 401 "$resp"
    # Wrong method / unknown path, authenticated.
    auth="Authorization: Bearer contract-secret${CRLF}"
    resp=$(http_exchange "$hport" "GET /v1/sweep HTTP/1.1${CRLF}Host: x${CRLF}${auth}Connection: close${CRLF}${CRLF}")
    check_http "sweep with wrong method" 405 "$resp"
    resp=$(http_exchange "$hport" "GET /no/such HTTP/1.1${CRLF}Host: x${CRLF}${auth}Connection: close${CRLF}${CRLF}")
    check_http "unknown path" 404 "$resp"
    # First authenticated sweep is admitted and completes...
    resp=$(http_exchange "$hport" "${post}${auth}${CRLF}${body}")
    check_http "authenticated sweep" 200 "$resp"
    printf '%s' "$resp" | grep -q '"ok": true' || {
        echo "FAIL: admitted sweep did not stream a done event" >&2
        failures=$((failures + 1))
    }
    # ...and the drained token bucket sheds the next one with Retry-After,
    # leaking no sweep events.
    resp=$(http_exchange "$hport" "${post}${auth}${CRLF}${body}")
    check_http "quota-shed sweep" 429 "$resp"
    printf '%s' "$resp" | grep -qi '^retry-after: [0-9]' || {
        echo "FAIL: 429 lacks a Retry-After hint" >&2
        failures=$((failures + 1))
    }
    printf '%s' "$resp" | grep -q '"event"' && {
        echo "FAIL: quota-shed response leaked sweep events" >&2
        failures=$((failures + 1))
    }
    # The stock scraper path: exit 0 with the token, 3 without.
    "$tool" --scrape --http "127.0.0.1:$hport" --auth-token-file token.txt >/dev/null
    check_exit "HTTP scrape with token" 0 $?
    "$tool" --scrape --http "127.0.0.1:$hport" 2>/dev/null
    check_exit "HTTP scrape without token" 3 $?
fi
echo '{"id":"q","type":"shutdown"}' >quith.ndjson
"$tool" --client quith.ndjson --socket "$hsock" --quiet
wait "$http_server"
check_exit "HTTP server exit" 0 $?

# Usage contract for the HTTP flags: every misuse is exit 2 before
# anything binds.
"$tool" --http 127.0.0.1:1 </dev/null 2>/dev/null
check_exit "--http without --scrape" 2 $?
"$tool" --quota-rps 5 </dev/null 2>/dev/null
check_exit "quota-rps without --listen-http" 2 $?
"$tool" --listen-http 127.0.0.1:0 --quota-burst 5 </dev/null 2>/dev/null
check_exit "quota-burst without quota-rps" 2 $?
"$tool" --auth-token-file token.txt </dev/null 2>/dev/null
check_exit "auth token file without HTTP endpoint" 2 $?
"$tool" --listen-http 127.0.0.1:0 --quota-rps abc </dev/null 2>/dev/null
check_exit "non-numeric quota-rps" 2 $?
"$tool" --listen-http 127.0.0.1:0 --quota-rps 0 </dev/null 2>/dev/null
check_exit "zero quota-rps" 2 $?
"$tool" --listen-http nonsense </dev/null 2>/dev/null
check_exit "malformed --listen-http endpoint" 2 $?
"$tool" --listen-http 127.0.0.1:0 --auth-token-file "$workdir/no-such-token" </dev/null 2>/dev/null
check_exit "unreadable auth token file" 2 $?
"$tool" --scrape --http 127.0.0.1:0 2>/dev/null
check_exit "HTTP scrape of port 0" 2 $?
"$tool" --client good.ndjson --tcp 127.0.0.1:0 2>/dev/null
check_exit "client connect to port 0" 2 $?
"$cache" --listen-http 127.0.0.1:0 2>/dev/null
check_exit "cache_tool --listen-http without line listener" 2 $?
"$cache" --auth-token-file token.txt --stats --socket x.sock 2>/dev/null
check_exit "cache_tool auth token file in client mode" 2 $?

# cache_tool shares the same exit contract.
"$cache" 2>/dev/null
check_exit "cache_tool without mode" 2 $?
"$cache" --bogus 2>/dev/null
check_exit "cache_tool unknown option" 2 $?
"$cache" --listen a.sock --listen-tcp 127.0.0.1:0 2>/dev/null
check_exit "cache_tool both listen modes" 2 $?
"$cache" --stats 2>/dev/null
check_exit "cache_tool stats without destination" 2 $?
"$cache" --stats --shutdown --socket x.sock 2>/dev/null
check_exit "cache_tool stats plus shutdown" 2 $?
"$cache" --listen a.sock --stats --socket b.sock 2>/dev/null
check_exit "cache_tool daemon plus client mode" 2 $?
"$cache" --delay-ms abc --listen a.sock 2>/dev/null
check_exit "cache_tool non-numeric delay" 2 $?
"$cache" --listen a.sock --fault bogus:1 2>/dev/null
check_exit "cache_tool unknown fault kind" 2 $?
"$cache" --listen a.sock --fault "stall" 2>/dev/null
check_exit "cache_tool fault missing argument" 2 $?
"$cache" --listen a.sock --fault "disconnect-after:0" 2>/dev/null
check_exit "cache_tool fault non-positive argument" 2 $?
"$cache" --fault "stall:5" --stats --socket x.sock 2>/dev/null
check_exit "cache_tool fault in client mode" 2 $?
"$cache" --scrape 2>/dev/null
check_exit "cache_tool scrape without destination" 2 $?
"$cache" --listen a.sock --scrape 2>/dev/null
check_exit "cache_tool scrape in daemon mode" 2 $?
"$cache" --scrape --shutdown --socket x.sock 2>/dev/null
check_exit "cache_tool scrape plus shutdown" 2 $?
"$cache" --scrape --socket "$workdir/no-daemon-here.sock" 2>/dev/null
check_exit "cache_tool scrape against dead socket" 3 $?
"$cache" --data-dir d --stats --socket x.sock 2>/dev/null
check_exit "cache_tool data dir in client mode" 2 $?
"$cache" --stats --socket "$workdir/no-daemon-here.sock" 2>/dev/null
check_exit "cache_tool stats against dead socket" 3 $?
"$cache" --listen "$workdir/no/such/dir/c.sock" 2>/dev/null
check_exit "cache_tool unbindable path" 3 $?

# cache_tool round trip: daemon up, stats ok, shutdown ok, then dead.
csock="$workdir/contract-cache.sock"
"$cache" --listen "$csock" 2>/dev/null &
cache_daemon=$!
for _ in $(seq 600); do [ -S "$csock" ] && break; sleep 0.1; done
"$cache" --stats --socket "$csock" >/dev/null
check_exit "cache_tool stats" 0 $?
"$cache" --shutdown --socket "$csock" >/dev/null
check_exit "cache_tool shutdown" 0 $?
wait "$cache_daemon"
check_exit "cache daemon exit" 0 $?
"$cache" --stats --socket "$csock" 2>/dev/null
check_exit "cache_tool stats after shutdown" 3 $?

exit "$failures"
