// TCP transport behind the ResponseSink/LineReader seam: endpoint
// parsing, ephemeral-port binding, full request/response round-trips over
// real sockets through the shared serve_listener() loop (the same code
// path serve_tool --listen-tcp runs), concurrent clients, oversized-line
// rejection, and drain-on-shutdown.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/service.h"
#include "serve/socket.h"
#include "serve/transport.h"
#include "util/json_parse.h"

namespace sdlc::serve {
namespace {

TEST(ParseHostPort, AcceptsAndRejects) {
    std::string host;
    uint16_t port = 0;
    std::string error;

    EXPECT_TRUE(parse_host_port("127.0.0.1:8331", host, port, &error));
    EXPECT_EQ(host, "127.0.0.1");
    EXPECT_EQ(port, 8331);

    EXPECT_TRUE(parse_host_port("localhost:0", host, port, &error));
    EXPECT_EQ(host, "localhost");
    EXPECT_EQ(port, 0);

    EXPECT_TRUE(parse_host_port("[::1]:70", host, port, &error));
    EXPECT_EQ(host, "::1");
    EXPECT_EQ(port, 70);

    EXPECT_TRUE(parse_host_port(":9000", host, port, &error)) << "empty host = all interfaces";
    EXPECT_EQ(host, "");
    EXPECT_EQ(port, 9000);

    EXPECT_FALSE(parse_host_port("nocolon", host, port, &error));
    EXPECT_FALSE(parse_host_port("h:", host, port, &error));
    EXPECT_FALSE(parse_host_port("h:abc", host, port, &error));
    EXPECT_FALSE(parse_host_port("h:65536", host, port, &error));
    EXPECT_FALSE(parse_host_port("h:-1", host, port, &error));
}

TEST(ParseHostPort, PortZeroIsListenOnlyAndBracketedV6NeedsAPort) {
    std::string host;
    uint16_t port = 0;
    std::string error;

    // Listener specs keep port 0 (ephemeral bind)...
    EXPECT_TRUE(parse_host_port("localhost:0", host, port, &error,
                                /*allow_port_zero=*/true));
    // ...but a spec naming a peer to connect to must reject it at parse
    // time: connecting to port 0 can only fail later with a bare errno.
    EXPECT_FALSE(parse_host_port("localhost:0", host, port, &error,
                                 /*allow_port_zero=*/false));
    EXPECT_NE(error.find("port 0"), std::string::npos) << error;
    EXPECT_TRUE(parse_host_port("localhost:1", host, port, &error,
                                /*allow_port_zero=*/false));

    // "[::1]" used to split at a colon inside the address and report
    // `invalid port "1]"`; the error must name the actual problem.
    EXPECT_FALSE(parse_host_port("[::1]", host, port, &error));
    EXPECT_NE(error.find("missing port"), std::string::npos) << error;
    EXPECT_EQ(error.find("invalid port"), std::string::npos)
        << "must not misread the address tail as a port: " << error;
    EXPECT_FALSE(parse_host_port("[2001:db8::7]", host, port, &error));
    EXPECT_NE(error.find("missing port"), std::string::npos) << error;

    // Bracketed-with-port still parses on both paths.
    EXPECT_TRUE(parse_host_port("[::1]:70", host, port, &error,
                                /*allow_port_zero=*/false));
    EXPECT_EQ(host, "::1");
    EXPECT_EQ(port, 70);
}

TEST(TcpSocketServerTest, EphemeralPortIsReportedAndConnectable) {
    TcpSocketServer server("127.0.0.1", 0);
    EXPECT_GT(server.port(), 0) << "port 0 must resolve to the kernel-chosen port";
    EXPECT_EQ(server.endpoint(), "tcp:127.0.0.1:" + std::to_string(server.port()));

    const int client = tcp_connect("127.0.0.1", server.port());
    ASSERT_GE(client, 0);
    const int conn = server.accept_client(/*timeout_ms=*/5000);
    ASSERT_GE(conn, 0);
    // Bytes flow both ways through the accepted pair.
    ASSERT_TRUE(write_all(client, "ping\n"));
    LineReader reader(conn);
    std::string line;
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "ping");
    ::close(conn);
    ::close(client);
}

TEST(TcpSocketServerTest, CloseUnblocksAccept) {
    TcpSocketServer server("127.0.0.1", 0);
    std::thread closer([&server] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        server.close();
    });
    EXPECT_EQ(server.accept_client(/*timeout_ms=*/-1), -1);
    closer.join();
}

// ---- full service over TCP (the serve_tool --listen-tcp code path) ----

/// A served TCP endpoint: SweepService + serve_listener on a background
/// thread, torn down by the protocol's own shutdown request.
struct TcpFixture {
    ServiceOptions opts;
    std::unique_ptr<SweepService> service;
    std::unique_ptr<TcpSocketServer> listener;
    std::thread loop;

    explicit TcpFixture(ServiceOptions o = {}) : opts(o) {
        service = std::make_unique<SweepService>(opts);
        listener = std::make_unique<TcpSocketServer>("127.0.0.1", 0);
        loop = std::thread([this] {
            serve_listener(*listener, *service, opts.max_request_bytes);
        });
    }

    ~TcpFixture() {
        if (!service->shutdown_requested()) {
            // Belt and braces for failing tests; normal paths shut down via
            // a protocol request.
            service->request_shutdown();
        }
        if (loop.joinable()) loop.join();
    }
};

/// Sends `lines` on one connection and reads events until `expect_done`
/// done events arrived (connection stays open meanwhile).
std::vector<std::string> roundtrip(uint16_t port, const std::vector<std::string>& lines,
                                   size_t expect_done) {
    const int fd = tcp_connect("127.0.0.1", port);
    EXPECT_GE(fd, 0);
    for (const std::string& line : lines) {
        EXPECT_TRUE(write_all(fd, line));
        EXPECT_TRUE(write_all(fd, "\n"));
    }
    LineReader reader(fd);
    std::vector<std::string> events;
    std::string line;
    size_t done = 0;
    while (done < expect_done && reader.next(line)) {
        events.push_back(line);
        if (line.find("\"event\": \"done\"") != std::string::npos) ++done;
    }
    ::close(fd);
    EXPECT_EQ(done, expect_done);
    return events;
}

std::string tiny_sweep_line(const std::string& id) {
    return "{\"id\": \"" + id +
           "\", \"spec\": {\"width\": 4, \"variants\": [\"sdlc\"], \"schemes\": [\"ripple\"]}}";
}

TEST(ServeTcp, StreamMatchesInProcessServiceByteForByte) {
    // The transport must be a pure pipe: the event lines a TCP client
    // reads are exactly the lines the service writes to an in-process
    // sink for the same request against the same (cold) cache state.
    std::vector<std::string> expected;
    {
        SweepService reference;
        auto sink = std::make_shared<BufferSink>();
        ASSERT_TRUE(reference.submit_line(tiny_sweep_line("t"), sink));
        // Wait for completion by polling the terminal event.
        for (int spin = 0; spin < 6000; ++spin) {
            expected = sink->lines();
            if (!expected.empty() &&
                expected.back().find("\"event\": \"done\"") != std::string::npos) {
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        ASSERT_FALSE(expected.empty());
    }

    TcpFixture fx;
    const auto events = roundtrip(fx.listener->port(), {tiny_sweep_line("t")}, 1);
    EXPECT_EQ(events, expected);

    roundtrip(fx.listener->port(), {"{\"id\": \"q\", \"type\": \"shutdown\"}"}, 1);
}

TEST(ServeTcp, ConcurrentClientsEachGetTheirOwnCompleteStream) {
    ServiceOptions opts;
    opts.request_workers = 2;
    TcpFixture fx(opts);

    constexpr int kClients = 4;
    std::vector<std::vector<std::string>> streams(kClients);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&fx, &streams, c] {
            const std::string id = "client" + std::to_string(c);
            streams[c] = roundtrip(fx.listener->port(), {tiny_sweep_line(id)}, 1);
        });
    }
    for (std::thread& t : clients) t.join();

    for (int c = 0; c < kClients; ++c) {
        const std::string id_token = "\"id\": \"client" + std::to_string(c) + "\"";
        ASSERT_FALSE(streams[c].empty());
        size_t points = 0;
        for (const std::string& line : streams[c]) {
            EXPECT_NE(line.find(id_token), std::string::npos)
                << "a connection must only ever see its own request's events: " << line;
            if (line.find("\"event\": \"point\"") != std::string::npos) ++points;
        }
        EXPECT_EQ(points, 3u);
        EXPECT_NE(streams[c].back().find("\"ok\": true"), std::string::npos);
    }

    roundtrip(fx.listener->port(), {"{\"id\": \"q\", \"type\": \"shutdown\"}"}, 1);
}

TEST(ServeTcp, OversizedUnterminatedLineGetsStructuredRejection) {
    ServiceOptions opts;
    opts.max_request_bytes = 512;
    TcpFixture fx(opts);

    const int fd = tcp_connect("127.0.0.1", fx.listener->port());
    ASSERT_GE(fd, 0);
    // Stream far past the cap without ever sending a newline.
    const std::string junk(4096, 'x');
    ASSERT_TRUE(write_all(fd, junk));
    LineReader reader(fd);
    std::string line;
    std::vector<std::string> events;
    while (events.size() < 2 && reader.next(line)) events.push_back(line);
    ::close(fd);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].find("\"code\": \"too_large\""), std::string::npos) << events[0];
    EXPECT_NE(events[1].find("\"ok\": false"), std::string::npos) << events[1];

    roundtrip(fx.listener->port(), {"{\"id\": \"q\", \"type\": \"shutdown\"}"}, 1);
}

TEST(ServeTcp, ShutdownDrainsAcceptedTcpRequests) {
    ServiceOptions opts;
    opts.request_workers = 1;
    TcpFixture fx(opts);

    // One connection queues work then requests shutdown; the queued sweep
    // must still stream to completion before the server loop exits.
    const auto events = roundtrip(fx.listener->port(),
                                  {tiny_sweep_line("drain"),
                                   "{\"id\": \"q\", \"type\": \"shutdown\"}"},
                                  2);
    bool sweep_completed = false;
    for (const std::string& line : events) {
        if (line.find("\"id\": \"drain\"") != std::string::npos &&
            line.find("\"ok\": true") != std::string::npos) {
            sweep_completed = true;
        }
    }
    EXPECT_TRUE(sweep_completed);
    fx.loop.join();  // the listener loop must terminate on its own
    EXPECT_TRUE(fx.service->shutdown_requested());
}

}  // namespace
}  // namespace sdlc::serve
