// Randomized protocol fuzzing with fixed seeds: whatever bytes arrive on
// the wire, parse_request must never crash, never hang, and always yield
// either a valid SweepRequest or a structured RequestError with a
// machine-readable code. Valid requests generated from a seeded grammar
// must round-trip: the line parses, and the parsed fields match what the
// generator intended (cross-checked through util/json_parse).
#include <gtest/gtest.h>

#include <bit>
#include <iterator>
#include <string>
#include <vector>

#include "dse/cache_wire.h"
#include "serve/protocol.h"
#include "util/json_parse.h"
#include "util/rng.h"

namespace sdlc::serve {
namespace {

/// Every rejection must carry one of the documented codes; anything else
/// means a new failure mode leaked out without being classified.
void expect_structured(const std::string& line, const SweepRequest& req,
                       const RequestError& err, bool parsed) {
    (void)req;
    if (parsed) return;
    EXPECT_TRUE(err.code == "too_large" || err.code == "parse_error" ||
                err.code == "invalid_request" || err.code == "invalid_shard")
        << "unclassified rejection code \"" << err.code << "\" for: " << line.substr(0, 120);
    EXPECT_FALSE(err.message.empty()) << line.substr(0, 120);
}

void fuzz_one(const std::string& line, size_t max_bytes = kDefaultMaxRequestBytes) {
    SweepRequest req;
    RequestError err;
    const bool parsed = parse_request(line, max_bytes, req, err);
    expect_structured(line, req, err, parsed);
    if (parsed) {
        // A parsed request must be internally coherent enough to describe
        // and count without throwing (the service calls both before
        // evaluating anything).
        EXPECT_FALSE(req.id.empty());
        if (req.type == RequestType::kCancel) EXPECT_FALSE(req.target.empty());
    }
}

TEST(ProtocolFuzz, RandomBytesNeverCrash) {
    Xoshiro256 rng(0xf022ed01u);
    for (int round = 0; round < 2000; ++round) {
        const size_t length = rng.below(256);
        std::string line;
        line.reserve(length);
        for (size_t i = 0; i < length; ++i) {
            line.push_back(static_cast<char>(rng.below(256)));
        }
        fuzz_one(line);
    }
}

TEST(ProtocolFuzz, RandomJsonLikeTokensNeverCrash) {
    // Structured garbage exercises the parser deeper than raw bytes: the
    // tokens are JSON-plausible so more inputs survive into the schema
    // checks.
    static const char* kTokens[] = {
        "{",     "}",        "[",       "]",          ":",        ",",       "\"id\"",
        "\"r1\"", "\"type\"", "\"sweep\"", "\"spec\"", "\"width\"", "4",      "-1",
        "1e999", "0.5",      "null",    "true",       "false",    "\"\\u0000\"",
        "\"\\ud800\"", " ",  "\\",      "\"widths\"", "[4,5]",    "\"deadline_ms\"",
        "\"chunk_bytes\"",   "\"eval\"", "\"seed\"",  "\"cancel\"", "\"target\"",
        "\"shard\"", "\"lo\"", "\"hi\"", "\"point_bits\"",
    };
    Xoshiro256 rng(0xf022ed02u);
    for (int round = 0; round < 2000; ++round) {
        const size_t tokens = 1 + rng.below(40);
        std::string line;
        for (size_t i = 0; i < tokens; ++i) {
            line += kTokens[rng.below(std::size(kTokens))];
        }
        fuzz_one(line);
    }
}

TEST(ProtocolFuzz, MutatedValidRequestsNeverCrash) {
    const std::string seedline =
        "{\"id\": \"r1\", \"type\": \"sweep\","
        " \"spec\": {\"widths\": [4, 5], \"min_depth\": 2, \"max_depth\": 3,"
        " \"variants\": [\"sdlc\"], \"schemes\": [\"wallace\"]},"
        " \"eval\": {\"seed\": 42, \"samples\": 1000, \"hardware\": false},"
        " \"objectives\": [\"error\", \"area\"], \"deadline_ms\": 250,"
        " \"chunk_bytes\": 4096, \"export\": true,"
        " \"shard\": {\"lo\": 1, \"hi\": 3}, \"point_bits\": true}";
    Xoshiro256 rng(0xf022ed03u);
    for (int round = 0; round < 3000; ++round) {
        std::string line = seedline;
        const size_t mutations = 1 + rng.below(8);
        for (size_t m = 0; m < mutations; ++m) {
            switch (rng.below(4)) {
                case 0:  // flip one byte
                    line[rng.below(line.size())] = static_cast<char>(rng.below(256));
                    break;
                case 1:  // delete one byte
                    line.erase(rng.below(line.size()), 1);
                    break;
                case 2:  // duplicate-insert one byte
                    line.insert(rng.below(line.size()), 1, line[rng.below(line.size())]);
                    break;
                case 3:  // truncate
                    line.resize(rng.below(line.size()) + 1);
                    break;
            }
            if (line.empty()) line = "{";
        }
        fuzz_one(line);
    }
}

TEST(ProtocolFuzz, ShardRangesParseStrictly) {
    // A valid range is accepted with both bounds; every contradictory or
    // malformed one is rejected with the structured "invalid_shard" code
    // (ranges) or "invalid_request" (shape).
    const std::string head = "{\"id\": \"s\", \"spec\": {\"width\": 4}, \"shard\": ";
    SweepRequest req;
    RequestError err;
    ASSERT_TRUE(parse_request(head + "{\"lo\": 1, \"hi\": 3}}", kDefaultMaxRequestBytes, req,
                              err))
        << err.message;
    EXPECT_EQ(req.shard_lo, 1u);
    EXPECT_EQ(req.shard_hi, 3u);

    const struct {
        const char* shard;
        const char* code;
    } bad[] = {
        {"{\"lo\": 3, \"hi\": 3}}", "invalid_shard"},    // empty range
        {"{\"lo\": 4, \"hi\": 2}}", "invalid_shard"},    // inverted
        {"{\"lo\": 0, \"hi\": 9999}}", "invalid_shard"}, // past the space
        {"{\"lo\": 1}}", "invalid_request"},             // missing hi
        {"{\"hi\": 2}}", "invalid_request"},             // missing lo
        {"{\"lo\": -1, \"hi\": 2}}", "invalid_request"}, // negative
        {"{\"lo\": 0.5, \"hi\": 2}}", "invalid_request"},
        {"[1, 2]}", "invalid_request"},                  // not an object
        {"{\"lo\": 0, \"hi\": 1, \"x\": 1}}", "invalid_request"},  // unknown key
    };
    for (const auto& c : bad) {
        SweepRequest r;
        RequestError e;
        EXPECT_FALSE(parse_request(head + c.shard, kDefaultMaxRequestBytes, r, e)) << c.shard;
        EXPECT_EQ(e.code, c.code) << c.shard << " — " << e.message;
    }
}

TEST(ProtocolFuzz, SweepRequestJsonRoundTrips) {
    // The coordinator's shard sub-requests go through the same strict
    // parser as any client line; fuzz the serializer against it across
    // the knob space.
    Xoshiro256 rng(0xf022ed05u);
    for (int round = 0; round < 200; ++round) {
        SweepRequest req;
        req.id = "s" + std::to_string(round);
        req.spec.widths = {static_cast<int>(4 + rng.below(4))};
        req.eval.seed = rng.next();
        req.eval.samples = 1 + rng.below(1 << 20);
        req.eval.use_hw_cache = rng.below(2) == 0;
        req.eval.evaluate_hardware = rng.below(2) == 0;
        req.stream_points = true;
        req.export_json = false;
        req.point_bits = rng.below(2) == 0;
        req.deadline_ms = rng.below(2) == 0 ? 0 : 1 + rng.below(100000);
        const size_t count = req.spec.count();
        req.shard_lo = rng.below(count);
        req.shard_hi = req.shard_lo + 1 + rng.below(count - req.shard_lo);

        SweepRequest back;
        RequestError err;
        ASSERT_TRUE(
            parse_request(sweep_request_json(req), kDefaultMaxRequestBytes, back, err))
            << err.message << " — " << sweep_request_json(req);
        EXPECT_EQ(back.id, req.id);
        EXPECT_EQ(back.spec.widths, req.spec.widths);
        EXPECT_EQ(back.eval.seed, req.eval.seed);
        EXPECT_EQ(back.eval.samples, req.eval.samples);
        EXPECT_EQ(back.eval.use_hw_cache, req.eval.use_hw_cache);
        EXPECT_EQ(back.eval.evaluate_hardware, req.eval.evaluate_hardware);
        EXPECT_EQ(back.shard_lo, req.shard_lo);
        EXPECT_EQ(back.shard_hi, req.shard_hi);
        EXPECT_EQ(back.point_bits, req.point_bits);
        EXPECT_EQ(back.deadline_ms, req.deadline_ms);
    }
}

TEST(ProtocolFuzz, DeepNestingIsRejectedNotOverflowed) {
    // Input depth must never become stack depth: a nesting bomb gets a
    // parse_error, not a crash.
    for (const size_t depth : {64u, 100u, 1000u, 100000u}) {
        std::string bomb = "{\"id\": \"r\", \"spec\": ";
        for (size_t i = 0; i < depth; ++i) bomb += "[";
        for (size_t i = 0; i < depth; ++i) bomb += "]";
        bomb += "}";
        SweepRequest req;
        RequestError err;
        EXPECT_FALSE(parse_request(bomb, kDefaultMaxRequestBytes, req, err)) << depth;
        EXPECT_TRUE(err.code == "parse_error" || err.code == "too_large" ||
                    err.code == "invalid_request")
            << err.code;
    }
}

TEST(ProtocolFuzz, TinySizeCapsStillClassify) {
    Xoshiro256 rng(0xf022ed04u);
    for (int round = 0; round < 500; ++round) {
        const size_t length = rng.below(64);
        std::string line;
        for (size_t i = 0; i < length; ++i) {
            line.push_back(static_cast<char>(' ' + rng.below(95)));
        }
        fuzz_one(line, /*max_bytes=*/rng.below(32));
    }
}

// ---------------------------------------------------- valid round-trips ----

/// What the generator meant; compared against the parsed SweepRequest.
struct Intent {
    std::string id;
    std::vector<int> widths;
    uint64_t seed = 0;
    bool seed_as_string = false;  ///< full 64-bit range; numeric form caps at 2^53
    bool hardware = true;
    uint64_t deadline_ms = 0;
    size_t chunk_bytes = 0;
    bool export_json = false;
};

std::string render(const Intent& intent) {
    std::string line = "{\"id\": \"" + intent.id + "\", \"spec\": {\"widths\": [";
    for (size_t i = 0; i < intent.widths.size(); ++i) {
        line += (i > 0 ? ", " : "") + std::to_string(intent.widths[i]);
    }
    line += "]}, \"eval\": {\"seed\": ";
    if (intent.seed_as_string) {
        line += "\"" + std::to_string(intent.seed) + "\"";
    } else {
        line += std::to_string(intent.seed);
    }
    line += ", \"hardware\": ";
    line += intent.hardware ? "true" : "false";
    line += "}";
    if (intent.deadline_ms > 0) {
        line += ", \"deadline_ms\": " + std::to_string(intent.deadline_ms);
    }
    if (intent.chunk_bytes > 0) {
        line += ", \"chunk_bytes\": " + std::to_string(intent.chunk_bytes);
    }
    if (intent.export_json) line += ", \"export\": true";
    line += "}";
    return line;
}

TEST(ProtocolFuzz, GeneratedValidRequestsRoundTrip) {
    Xoshiro256 rng(0xf022ed05u);
    for (int round = 0; round < 1000; ++round) {
        Intent intent;
        intent.id = "req-" + std::to_string(round);
        const size_t width_count = 1 + rng.below(3);
        for (size_t i = 0; i < width_count; ++i) {
            intent.widths.push_back(2 + static_cast<int>(rng.below(15)));
        }
        // JSON numbers are exact only to 2^53; bigger seeds ride as strings.
        intent.seed_as_string = rng.below(2) == 0;
        intent.seed = intent.seed_as_string ? rng.next()
                                            : (rng.next() & ((uint64_t{1} << 53) - 1));
        intent.hardware = rng.below(2) == 0;
        if (rng.below(2) == 0) intent.deadline_ms = 1 + rng.below(10000);
        if (rng.below(2) == 0) intent.chunk_bytes = 16 + rng.below(1 << 16);
        intent.export_json = rng.below(2) == 0;

        const std::string line = render(intent);
        SweepRequest req;
        RequestError err;
        ASSERT_TRUE(parse_request(line, kDefaultMaxRequestBytes, req, err))
            << line << " — " << err.message;
        EXPECT_EQ(req.id, intent.id);
        EXPECT_EQ(req.spec.widths, intent.widths);
        EXPECT_EQ(req.eval.seed, intent.seed);
        EXPECT_EQ(req.eval.evaluate_hardware, intent.hardware);
        EXPECT_EQ(req.deadline_ms, intent.deadline_ms);
        EXPECT_EQ(req.chunk_bytes, intent.chunk_bytes);
        EXPECT_EQ(req.export_json, intent.export_json);

        // The request line itself must also survive the strict reader the
        // service uses (no duplicate keys, bounded nesting, clean JSON).
        JsonValue doc;
        std::string parse_error;
        EXPECT_TRUE(json_parse(line, doc, &parse_error)) << parse_error;
    }
}

// ------------------------------------------------- cache-tier protocol ----
//
// The cache daemon's wire format gets the same treatment as the sweep
// protocol: whatever arrives, parse_cache_request / parse_cache_response
// must never crash and must classify every rejection, and generated valid
// lines must round-trip bit-exactly (reports cross the wire as IEEE-754
// bit patterns, so "bit-exact" is literal).

void cache_fuzz_one(const std::string& line, size_t max_bytes = kCacheMaxRequestBytes) {
    CacheRequest request;
    CacheWireError err;
    if (!parse_cache_request(line, max_bytes, request, err)) {
        EXPECT_TRUE(err.code == "too_large" || err.code == "parse_error" ||
                    err.code == "invalid_request")
            << "unclassified rejection code \"" << err.code
            << "\" for: " << line.substr(0, 120);
        EXPECT_FALSE(err.message.empty()) << line.substr(0, 120);
    }
    // The response decoder must also survive arbitrary bytes (a broken or
    // malicious daemon): any return value is fine, crashing is not.
    CacheResponse response;
    std::string error;
    (void)parse_cache_response(line, response, &error);
}

TEST(CacheProtocolFuzz, RandomBytesNeverCrash) {
    Xoshiro256 rng(0xcac4ed01u);
    for (int round = 0; round < 2000; ++round) {
        const size_t length = rng.below(256);
        std::string line;
        line.reserve(length);
        for (size_t i = 0; i < length; ++i) {
            line.push_back(static_cast<char>(rng.below(256)));
        }
        cache_fuzz_one(line);
    }
}

TEST(CacheProtocolFuzz, RandomJsonLikeTokensNeverCrash) {
    static const char* kTokens[] = {
        "{",        "}",          "[",         "]",        ":",      ",",
        "\"id\"",   "\"g1\"",     "\"op\"",    "\"get\"",  "\"put\"", "\"stats\"",
        "\"shutdown\"", "\"key\"", "\"0x5cf1d3a9b2e47086\"", "\"report\"",
        "\"cells\"", "\"depth\"", "\"area_um2\"", "\"delay_ps\"",
        "\"dynamic_energy_fj\"",   "\"dynamic_power_uw\"", "\"leakage_nw\"",
        "\"energy_fj\"", "\"ok\"", "\"hit\"",   "\"stored\"", "0", "17", "-1",
        "1e999",    "null",       "true",      "false",    " ",      "\\",
        "\"0xzz\"", "\"0x\"",
    };
    Xoshiro256 rng(0xcac4ed02u);
    for (int round = 0; round < 2000; ++round) {
        const size_t tokens = 1 + rng.below(40);
        std::string line;
        for (size_t i = 0; i < tokens; ++i) {
            line += kTokens[rng.below(std::size(kTokens))];
        }
        cache_fuzz_one(line);
    }
}

TEST(CacheProtocolFuzz, MutatedValidRequestsNeverCrash) {
    SynthesisReport report;
    report.cells = 120;
    report.depth = 9;
    report.area_um2 = 512.25;
    report.delay_ps = 1234.5;
    report.dynamic_energy_fj = 17.0 / 3.0;
    report.dynamic_power_uw = 1e-3;
    report.leakage_nw = 2.5;
    report.energy_fj = 40.875;
    const std::string seedline = cache_put_line("r1", 0x5cf1d3a9b2e47086ull, report);
    Xoshiro256 rng(0xcac4ed03u);
    for (int round = 0; round < 3000; ++round) {
        std::string line = seedline;
        const size_t mutations = 1 + rng.below(8);
        for (size_t m = 0; m < mutations; ++m) {
            switch (rng.below(4)) {
                case 0:
                    line[rng.below(line.size())] = static_cast<char>(rng.below(256));
                    break;
                case 1:
                    line.erase(rng.below(line.size()), 1);
                    break;
                case 2:
                    line.insert(rng.below(line.size()), 1, line[rng.below(line.size())]);
                    break;
                case 3:
                    line.resize(rng.below(line.size()) + 1);
                    break;
            }
            if (line.empty()) line = "{";
        }
        cache_fuzz_one(line);
    }
}

TEST(CacheProtocolFuzz, GeneratedValidRequestsRoundTripBitExactly) {
    Xoshiro256 rng(0xcac4ed04u);
    for (int round = 0; round < 1000; ++round) {
        const uint64_t key = rng.next();
        SynthesisReport report;
        report.cells = rng.below(1 << 20);
        report.depth = static_cast<int>(rng.below(256));
        // Arbitrary bit patterns, including NaNs, infinities and
        // subnormals: the wire format must not care.
        report.area_um2 = std::bit_cast<double>(rng.next());
        report.delay_ps = std::bit_cast<double>(rng.next());
        report.dynamic_energy_fj = std::bit_cast<double>(rng.next());
        report.dynamic_power_uw = std::bit_cast<double>(rng.next());
        report.leakage_nw = std::bit_cast<double>(rng.next());
        report.energy_fj = std::bit_cast<double>(rng.next());

        CacheRequest request;
        CacheWireError err;
        ASSERT_TRUE(parse_cache_request(cache_put_line("p", key, report),
                                        kCacheMaxRequestBytes, request, err))
            << err.message;
        EXPECT_EQ(request.key, key);
        EXPECT_EQ(std::bit_cast<uint64_t>(request.report.area_um2),
                  std::bit_cast<uint64_t>(report.area_um2));
        EXPECT_EQ(std::bit_cast<uint64_t>(request.report.energy_fj),
                  std::bit_cast<uint64_t>(report.energy_fj));
        EXPECT_EQ(std::bit_cast<uint64_t>(request.report.leakage_nw),
                  std::bit_cast<uint64_t>(report.leakage_nw));
        EXPECT_EQ(request.report.cells, report.cells);

        CacheResponse response;
        std::string error;
        ASSERT_TRUE(parse_cache_response(cache_hit_response("p", report), response, &error))
            << error;
        EXPECT_EQ(std::bit_cast<uint64_t>(response.report.delay_ps),
                  std::bit_cast<uint64_t>(report.delay_ps));
        EXPECT_EQ(std::bit_cast<uint64_t>(response.report.dynamic_power_uw),
                  std::bit_cast<uint64_t>(report.dynamic_power_uw));
    }
}

}  // namespace
}  // namespace sdlc::serve
