// Tests for the ApproxMultiplier facade.
#include <gtest/gtest.h>

#include "api/approx_multiplier.h"
#include "core/compensation.h"
#include "core/functional.h"

namespace sdlc {
namespace {

TEST(Api, AccurateVariantIsExact) {
    MultiplierConfig cfg;
    cfg.variant = MultiplierVariant::kAccurate;
    const ApproxMultiplier mul(cfg);
    for (uint64_t a = 0; a < 256; a += 13) {
        for (uint64_t b = 0; b < 256; b += 11) {
            EXPECT_EQ(mul.multiply(a, b), a * b);
            EXPECT_EQ(mul.error_distance(a, b), 0u);
        }
    }
    EXPECT_EQ(mul.multiply_signed(-3, 5), -15);
}

TEST(Api, SdlcVariantMatchesCoreModel) {
    MultiplierConfig cfg;
    cfg.width = 8;
    cfg.depth = 3;
    const ApproxMultiplier mul(cfg);
    const ClusterPlan plan = ClusterPlan::make(8, 3);
    for (uint64_t a = 0; a < 256; a += 3) {
        for (uint64_t b = 0; b < 256; b += 7) {
            EXPECT_EQ(mul.multiply(a, b), sdlc_multiply(plan, a, b));
        }
    }
}

TEST(Api, CompensatedVariantMatchesCoreModel) {
    MultiplierConfig cfg;
    cfg.variant = MultiplierVariant::kCompensated;
    const ApproxMultiplier mul(cfg);
    const ClusterPlan plan = ClusterPlan::make(8, 2);
    for (uint64_t a = 0; a < 256; a += 5) {
        for (uint64_t b = 0; b < 256; b += 3) {
            EXPECT_EQ(mul.multiply(a, b), sdlc_multiply_compensated(plan, a, b));
        }
    }
    EXPECT_THROW((void)mul.multiply_signed(1, 1), std::invalid_argument);
}

TEST(Api, BuildNetlistHonorsConfiguration) {
    MultiplierConfig cfg;
    cfg.width = 8;
    cfg.depth = 2;
    cfg.scheme = AccumulationScheme::kWallace;
    const ApproxMultiplier mul(cfg);
    const MultiplierNetlist hw = mul.build_netlist();
    EXPECT_EQ(hw.width, 8);
    EXPECT_EQ(hw.p_bits.size(), 16u);
    EXPECT_NE(hw.label.find("wallace"), std::string::npos);
    // Netlist agrees with the facade's software model.
    for (uint64_t a = 0; a < 256; a += 17) {
        for (uint64_t b = 0; b < 256; b += 19) {
            EXPECT_EQ(simulate_one(hw, a, b), mul.multiply(a, b));
        }
    }
}

TEST(Api, DescribeMentionsEveryKnob) {
    MultiplierConfig cfg;
    cfg.width = 16;
    cfg.depth = 4;
    cfg.variant = MultiplierVariant::kCompensated;
    cfg.scheme = AccumulationScheme::kDadda;
    const std::string d = ApproxMultiplier(cfg).describe();
    EXPECT_NE(d.find("16x16"), std::string::npos);
    EXPECT_NE(d.find("d4"), std::string::npos);
    EXPECT_NE(d.find("comp"), std::string::npos);
    EXPECT_NE(d.find("dadda"), std::string::npos);
}

TEST(Api, RejectsInvalidConfigurations) {
    MultiplierConfig bad_width;
    bad_width.width = 0;
    EXPECT_THROW(ApproxMultiplier{bad_width}, std::invalid_argument);
    MultiplierConfig bad_depth;
    bad_depth.depth = 99;
    EXPECT_THROW(ApproxMultiplier{bad_depth}, std::invalid_argument);
}

TEST(Api, AccurateIgnoresDepth) {
    MultiplierConfig cfg;
    cfg.variant = MultiplierVariant::kAccurate;
    cfg.depth = 4;
    const ApproxMultiplier mul(cfg);
    EXPECT_TRUE(mul.plan().groups().empty());
}

}  // namespace
}  // namespace sdlc
