// Tests for the testbench generator and stuck-at fault injection.
#include <gtest/gtest.h>

#include "baselines/accurate.h"
#include "core/generator.h"
#include "netlist/fault.h"
#include "netlist/sim.h"
#include "netlist/testbench.h"
#include "util/rng.h"

namespace sdlc {
namespace {

// --- Testbench generator ----------------------------------------------------

TEST(Testbench, ContainsDutAndChecks) {
    const MultiplierNetlist m = build_sdlc_multiplier(4, {});
    TestbenchOptions opts;
    opts.vectors = 16;
    const std::string tb = to_verilog_testbench(m.net, "mul4", opts);
    EXPECT_NE(tb.find("module mul4_tb;"), std::string::npos);
    EXPECT_NE(tb.find("mul4 dut ("), std::string::npos);
    EXPECT_NE(tb.find("localparam int VECTORS = 16;"), std::string::npos);
    EXPECT_NE(tb.find("$fatal"), std::string::npos);
    EXPECT_NE(tb.find("PASS"), std::string::npos);
    EXPECT_NE(tb.find(".a0(in_bits[0])"), std::string::npos);
    EXPECT_NE(tb.find(".p0(out_bits[0])"), std::string::npos);
}

TEST(Testbench, GoldenVectorsAreSelfConsistent) {
    // The first stimulus/golden pair encoded in the testbench must agree
    // with direct simulation: parse the literal back and re-check.
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    nl.mark_output(nl.and_gate(a, b), "y");
    TestbenchOptions opts;
    opts.vectors = 64;
    const std::string tb = to_verilog_testbench(nl, "tiny", opts);
    size_t pos = tb.find("stim[0] = 2'b");
    ASSERT_NE(pos, std::string::npos);
    const bool in1 = tb[pos + 13] == '1';  // MSB = input index 1 (b)
    const bool in0 = tb[pos + 14] == '1';
    size_t gpos = tb.find("gold[0] = 1'b", pos);
    ASSERT_NE(gpos, std::string::npos);
    const bool out0 = tb[gpos + 13] == '1';
    EXPECT_EQ(out0, in0 && in1);
}

TEST(Testbench, DeterministicForSeed) {
    const MultiplierNetlist m = build_sdlc_multiplier(4, {});
    TestbenchOptions opts;
    opts.vectors = 8;
    const std::string first = to_verilog_testbench(m.net, "m", opts);
    EXPECT_EQ(first, to_verilog_testbench(m.net, "m", opts));
    opts.seed ^= 1;
    EXPECT_NE(first, to_verilog_testbench(m.net, "m", opts));
}

// --- Fault injection ----------------------------------------------------------

TEST(Fault, StuckOutputDrivesConstant) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId g = nl.and_gate(a, b);
    nl.mark_output(g, "y");

    const Netlist faulty = inject_faults(nl, {{g, true}});
    for (const bool av : {false, true}) {
        for (const bool bv : {false, true}) {
            EXPECT_TRUE(eval_single(faulty, {av, bv})[0]);
        }
    }
}

TEST(Fault, FaultFreeInjectionIsIdentity) {
    const MultiplierNetlist m = build_sdlc_multiplier(6, {});
    const Netlist clone = inject_faults(m.net, {});
    Xoshiro256 rng(5);
    Simulator s1(m.net), s2(clone);
    std::vector<Simulator::Word> in(m.net.inputs().size());
    for (int pass = 0; pass < 4; ++pass) {
        for (auto& w : in) w = rng.next();
        s1.run(in);
        s2.run(in);
        EXPECT_EQ(s1.output_words(), s2.output_words());
    }
}

TEST(Fault, RejectsOutOfRangeSite) {
    Netlist nl;
    nl.input("a");
    EXPECT_THROW(inject_faults(nl, {{12345, false}}), std::invalid_argument);
}

TEST(Fault, LogicNetsExcludesSources) {
    Netlist nl;
    const NetId a = nl.input("a");
    nl.constant(true);
    nl.not_gate(a);
    const auto nets = logic_nets(nl);
    ASSERT_EQ(nets.size(), 1u);
    EXPECT_EQ(nl.gate(nets[0]).kind, GateKind::kNot);
}

TEST(Fault, StuckAtChangesSomeOutputs) {
    // A stuck-at-1 on a partial-product AND must corrupt at least one
    // operand pair's product.
    const MultiplierNetlist m = build_accurate_multiplier(4);
    const auto nets = logic_nets(m.net);
    const Netlist faulty = inject_faults(m.net, {{nets[0], true}});

    MultiplierNetlist fm = m;
    fm.net = faulty;
    fm.p_bits.clear();
    for (const OutputPort& p : fm.net.outputs()) fm.p_bits.push_back(p.net);

    int mismatches = 0;
    for (uint64_t a = 0; a < 16; ++a) {
        for (uint64_t b = 0; b < 16; ++b) {
            mismatches += simulate_one(fm, a, b) != a * b;
        }
    }
    EXPECT_GT(mismatches, 0);
}

TEST(Fault, MultipleFaultsCompose) {
    Netlist nl;
    const NetId a = nl.input("a");
    const NetId b = nl.input("b");
    const NetId x = nl.and_gate(a, b);
    const NetId y = nl.or_gate(a, b);
    nl.mark_output(nl.xor_gate(x, y), "z");
    const Netlist faulty = inject_faults(nl, {{x, true}, {y, false}});
    // z = 1 XOR 0 = 1 regardless of inputs.
    for (const bool av : {false, true}) {
        for (const bool bv : {false, true}) {
            EXPECT_TRUE(eval_single(faulty, {av, bv})[0]);
        }
    }
}

}  // namespace
}  // namespace sdlc
