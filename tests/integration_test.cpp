// End-to-end integration tests: generated hardware -> virtual synthesis ->
// the paper's qualitative claims (area/delay/power/energy reductions,
// Wallace/Dadda interplay, image-pipeline quality/energy trade-off).
#include <gtest/gtest.h>

#include "baselines/accurate.h"
#include "baselines/etm.h"
#include "baselines/kulkarni.h"
#include "core/functional.h"
#include "core/generator.h"
#include "image/convolve.h"
#include "image/gaussian.h"
#include "image/synthetic.h"
#include "netlist/opt.h"
#include "tech/synthesis.h"

namespace sdlc {
namespace {

SynthesisReport synth(const MultiplierNetlist& m) {
    return synthesize(m.net, CellLibrary::generic_90nm());
}

class SdlcVsAccurate : public testing::TestWithParam<int> {};

TEST_P(SdlcVsAccurate, ReducesAllHeadlineMetrics) {
    const int width = GetParam();
    const SynthesisReport acc = synth(build_accurate_multiplier(width));
    const SynthesisReport apx = synth(build_sdlc_multiplier(width, {}));

    EXPECT_LT(apx.cells, acc.cells) << width;
    EXPECT_LT(apx.area_um2, acc.area_um2) << width;
    EXPECT_LT(apx.delay_ps, acc.delay_ps) << width;
    EXPECT_LT(apx.dynamic_energy_fj, acc.dynamic_energy_fj) << width;
    EXPECT_LT(apx.leakage_nw, acc.leakage_nw) << width;
    EXPECT_LT(apx.energy_fj, acc.energy_fj) << width;
}

INSTANTIATE_TEST_SUITE_P(Widths, SdlcVsAccurate, testing::Values(4, 8, 16, 32),
                         [](const auto& pinfo) { return "w" + std::to_string(pinfo.param); });

TEST(Integration, DeeperClustersSaveMoreHardware) {
    // Paper Figure 7: savings grow with cluster depth.
    const SynthesisReport acc = synth(build_accurate_multiplier(8));
    double prev_area = acc.area_um2;
    for (int depth : {2, 3, 4}) {
        SdlcOptions opts;
        opts.depth = depth;
        const SynthesisReport r = synth(build_sdlc_multiplier(8, opts));
        EXPECT_LT(r.area_um2, prev_area) << depth;
        prev_area = r.area_um2;
    }
}

TEST(Integration, ReductionsHoldAcrossAllWidths) {
    // Paper Figure 6: every metric is substantially reduced at every width.
    // (Our honest gate-level STA keeps the final carry chain in both designs,
    // so the *growth* of the delay saving the paper reports under Design
    // Compiler does not reproduce under ripple CPAs — see EXPERIMENTS.md and
    // the ablation_cpa bench. The reductions themselves must always hold.)
    for (const int width : {4, 8, 16, 32}) {
        const SynthesisReport acc = synth(build_accurate_multiplier(width));
        const SynthesisReport apx = synth(build_sdlc_multiplier(width, {}));
        EXPECT_GT(SynthesisReport::reduction(acc.energy_fj, apx.energy_fj), 0.25) << width;
        EXPECT_GT(SynthesisReport::reduction(acc.area_um2, apx.area_um2), 0.30) << width;
        EXPECT_GT(SynthesisReport::reduction(acc.delay_ps, apx.delay_ps), 0.10) << width;
        EXPECT_GT(SynthesisReport::reduction(acc.dynamic_power_uw, apx.dynamic_power_uw),
                  0.25)
            << width;
    }
}

TEST(Integration, SdlcBeatsKulkarniAt16BitAndWinsOnAccuracy) {
    // Paper Figure 9 + Table IV, combined reading: at 16 bit SDLC clearly
    // outperforms Kulkarni on area and power, and dominates both baselines
    // on accuracy at the same time. (Our faithful dual-path ETM is smaller
    // than the paper's Figure 9 suggests — at a 12x worse MRED; discrepancy
    // documented in EXPERIMENTS.md.)
    const SynthesisReport acc = synth(build_accurate_multiplier(16));
    const SynthesisReport sdl = synth(build_sdlc_multiplier(16, {}));
    const SynthesisReport kul = synth(build_kulkarni_multiplier(16));
    const SynthesisReport etm = synth(build_etm_multiplier(16));

    const double sdl_area = SynthesisReport::reduction(acc.area_um2, sdl.area_um2);
    const double kul_area = SynthesisReport::reduction(acc.area_um2, kul.area_um2);
    EXPECT_GT(sdl_area, kul_area);
    EXPECT_GT(SynthesisReport::reduction(acc.area_um2, etm.area_um2), 0.0);

    const double sdl_pwr = SynthesisReport::reduction(acc.dynamic_power_uw, sdl.dynamic_power_uw);
    const double kul_pwr = SynthesisReport::reduction(acc.dynamic_power_uw, kul.dynamic_power_uw);
    EXPECT_GT(sdl_pwr, kul_pwr);
}

TEST(Integration, WallaceAndDaddaAlsoBenefitFromSdlc) {
    for (const AccumulationScheme scheme :
         {AccumulationScheme::kWallace, AccumulationScheme::kDadda}) {
        const SynthesisReport acc = synth(build_accurate_multiplier(16, scheme));
        SdlcOptions opts;
        opts.scheme = scheme;
        const SynthesisReport apx = synth(build_sdlc_multiplier(16, opts));
        EXPECT_LT(apx.area_um2, acc.area_um2) << accumulation_scheme_name(scheme);
        EXPECT_LT(apx.dynamic_energy_fj, acc.dynamic_energy_fj)
            << accumulation_scheme_name(scheme);
    }
}

TEST(Integration, ImagePipelineQualityEnergyTradeoff) {
    // Paper Figure 8, end to end: deeper clusters save more energy per
    // multiplication but lose PSNR; depth 2 must stay visually lossless-ish.
    const Image img = make_scene(200, 200, 2024);
    const FixedKernel kernel = make_gaussian_kernel(3, 1.5);
    const Image reference = convolve(img, kernel, exact_mul8);
    const SynthesisReport acc = synth(build_accurate_multiplier(8));

    double d2_psnr = 0.0;
    double prev_saving = -1.0;
    for (int depth : {2, 3, 4}) {
        const ClusterPlan plan = ClusterPlan::make(8, depth);
        const Image out = convolve(img, kernel, [&](uint8_t px, uint8_t w) {
            return static_cast<uint32_t>(sdlc_multiply(plan, px, w));
        });
        const double quality = psnr(reference, out);
        SdlcOptions opts;
        opts.depth = depth;
        const SynthesisReport r = synth(build_sdlc_multiplier(8, opts));
        const double saving = SynthesisReport::reduction(acc.dynamic_energy_fj,
                                                         r.dynamic_energy_fj);
        EXPECT_GT(saving, prev_saving);  // energy saving grows with depth
        if (depth == 2) {
            d2_psnr = quality;
            EXPECT_GT(quality, 33.0);  // paper: 50.2 dB on its own image
        } else {
            EXPECT_LT(quality, d2_psnr);  // depth 2 has the best quality
            EXPECT_GT(quality, 15.0);
        }
        prev_saving = saving;
    }
}

TEST(Integration, OptimizerNeverChangesMultiplierFunction) {
    // Spot integration of optimizer + generator across configs.
    for (int width : {6, 8}) {
        for (int depth : {2, 4}) {
            SdlcOptions opts;
            opts.depth = depth;
            MultiplierNetlist m = build_sdlc_multiplier(width, opts);
            MultiplierNetlist opt_m = m;  // same port interface
            opt_m.net = optimize(m.net).netlist;
            // The optimizer preserves output order; rebind the product bits.
            opt_m.p_bits.clear();
            for (const OutputPort& p : opt_m.net.outputs()) opt_m.p_bits.push_back(p.net);
            const ClusterPlan plan = ClusterPlan::make(width, depth);
            for (uint64_t a = 0; a < (uint64_t{1} << width); a += 3) {
                for (uint64_t b = 1; b < (uint64_t{1} << width); b += 7) {
                    ASSERT_EQ(simulate_one(opt_m, a, b), sdlc_multiply(plan, a, b));
                }
            }
        }
    }
}

}  // namespace
}  // namespace sdlc
